// Command bfsd is a long-running BFS query daemon over the hardened
// serving layer (internal/serve): load a graph once, then answer
// distance/parent queries over HTTP with panic isolation, stall
// detection, deadline budgets, bounded concurrency with load
// shedding, and serial-oracle degradation. The JSON API:
//
//	POST /load?gen=rmat&n=4096&m=32768&seed=1   generate and serve a graph
//	POST /load?format=edges|mtx|bin             load a graph from the body
//	POST /load?path=/data/graph.bin2            load (mmap when possible) a server-side file
//	GET  /query?src=0[&dst=7][&k=3][&path=1][&full=1][&validate=1][&batch=0]
//	GET  /query?kind=components                 weakly-connected components (cached per load)
//	GET  /query?kind=ecc&src=0                  eccentricity of src's reachable set
//	GET  /healthz                               liveness (always 200)
//	GET  /readyz                                readiness (503 until loaded; reports the graph)
//	GET  /metrics                               Prometheus text exposition
//
// dst= and k= are goal-directed: the engine terminates at the level
// barrier where dst's distance commits (or after k closed levels), so
// an s–t query costs the levels up to dst, not a whole-graph
// traversal. Truncated answers report truncated=true and are exact for
// every closed level; dst cannot be combined with full=1 because the
// distance array is deliberately partial.
//
// plus /debug/vars and /debug/pprof from the shared exposition mux.
// SIGTERM/SIGINT triggers a graceful drain: the listener closes,
// in-flight requests finish (bounded by -drain-timeout), engines shut
// down, and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"optibfs/internal/analysis"
	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
	"optibfs/internal/serve"
)

// loaded is the daemon's current graph and its serving guard. mapped
// is non-nil when the graph's Offsets/Edges alias an mmap (path loads
// of v2 binary files): the loaded holds the mapping's base reference,
// and every request pins it with retain/release so a /load swap can
// never munmap pages a draining query still reads.
type loaded struct {
	g      *graph.CSR
	guard  *serve.Guard
	desc   string
	mapped *mmio.MappedGraph

	// Components are immutable per load, so the first kind=components
	// query computes them once and every later one reads the cache.
	compOnce  sync.Once
	compSizes []int64
	compErr   error
}

// retain pins the loaded graph's backing storage for one request.
// Must be called under the daemon's read lock (see daemon.acquire):
// the lock orders the pin before any /load swap, so the base
// reference is still held when the pin lands.
func (l *loaded) retain() {
	if l.mapped != nil {
		l.mapped.Retain()
	}
}

// release undoes retain once the request is done with the graph.
func (l *loaded) release() {
	if l.mapped != nil {
		l.mapped.Release()
	}
}

// daemon holds the HTTP state. The guard swap on /load is the only
// mutation; queries take the read lock.
type daemon struct {
	cfg     serve.Config
	reg     *obs.Registry
	maxBody int64

	mu  sync.RWMutex
	cur *loaded

	// testHookAfterSnapshot fires in handleQuery between snapshotting
	// d.current() and querying it — the window a concurrent /load swap
	// races into. Nil outside tests.
	testHookAfterSnapshot func()
}

func newDaemon(cfg serve.Config, reg *obs.Registry, maxBody int64) *daemon {
	cfg.Registry = reg
	return &daemon{cfg: cfg, reg: reg, maxBody: maxBody}
}

// handler mounts the API on the shared exposition mux, so /metrics,
// /debug/vars, and /debug/pprof ride along for free.
func (d *daemon) handler() http.Handler {
	mux := obs.NewServeMux(d.reg)
	mux.HandleFunc("/load", d.handleLoad)
	mux.HandleFunc("/query", d.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("/readyz", d.handleReady)
	return mux
}

// current returns the graph being served, or nil before the first load.
func (d *daemon) current() *loaded {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cur
}

// acquire snapshots the current loaded graph with its storage pinned;
// the caller must release() it when done. The pin happens under the
// read lock, which orders it before any concurrent install: the swap's
// background base-reference drop therefore cannot be the final one
// while this request runs.
func (d *daemon) acquire() *loaded {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.cur != nil {
		d.cur.retain()
	}
	return d.cur
}

// install swaps in a freshly built guard and retires the old one in
// the background (Close blocks until its in-flight queries drain).
func (d *daemon) install(l *loaded) {
	d.mu.Lock()
	old := d.cur
	d.cur = l
	d.mu.Unlock()
	if old != nil {
		go retire(old)
	}
}

// retire closes a displaced guard and drops the loaded's base mapping
// reference. Close returns only after every slot came home, so no
// healthy engine can still be draining; an engine the guard abandoned
// as wedged may still be reading the pages, though, in which case the
// mapping is deliberately leaked along with it.
func retire(old *loaded) {
	old.guard.Close()
	if old.mapped == nil {
		return
	}
	if n := old.guard.Abandoned(); n > 0 {
		log.Printf("bfsd: leaking mmap of retired graph %q: %d wedged engine(s) may still read it", old.desc, n)
		return
	}
	old.mapped.Release()
}

// closeGuard shuts the active guard during daemon drain.
func (d *daemon) closeGuard() {
	d.mu.Lock()
	old := d.cur
	d.cur = nil
	d.mu.Unlock()
	if old != nil {
		retire(old)
	}
}

func (d *daemon) handleReady(w http.ResponseWriter, _ *http.Request) {
	cur := d.current()
	if cur == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "error": "no graph loaded"})
		return
	}
	// Load generators size their source/target draws off this, so the
	// ready probe doubles as the graph descriptor.
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":     true,
		"vertices":  cur.g.NumVertices(),
		"edges":     cur.g.NumEdges(),
		"desc":      cur.desc,
		"algorithm": string(cur.guard.Algorithm()),
	})
}

func (d *daemon) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "POST required"})
		return
	}
	var (
		g      *graph.CSR
		mapped *mmio.MappedGraph
		desc   string
		err    error
	)
	if path := r.URL.Query().Get("path"); path != "" {
		g, mapped, desc, err = openGraphFile(path, d.maxBody)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, errFileTooLarge):
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, mmio.ErrMalformed):
				status = http.StatusBadRequest
			}
			writeJSON(w, status, map[string]any{"error": err.Error()})
			return
		}
	} else if kind := r.URL.Query().Get("gen"); kind != "" {
		g, desc, err = generate(kind, r.URL.Query())
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
	} else {
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "edges"
		}
		body := http.MaxBytesReader(w, r.Body, d.maxBody)
		switch format {
		case "edges":
			g, err = mmio.ReadEdgeList(body)
		case "mtx":
			g, err = mmio.ReadMatrixMarket(body)
		case "bin":
			g, err = mmio.ReadBinary(body)
		default:
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("unknown format %q", format)})
			return
		}
		desc = format + " upload"
		if err != nil {
			status := http.StatusInternalServerError
			var mbe *http.MaxBytesError
			switch {
			case errors.As(err, &mbe):
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, mmio.ErrMalformed):
				// The bytes are the client's fault; a broken stream
				// (mmio.ErrIO) stays a 500.
				status = http.StatusBadRequest
			}
			writeJSON(w, status, map[string]any{"error": err.Error()})
			return
		}
	}
	guard, err := serve.New(g, d.cfg)
	if err != nil {
		if mapped != nil {
			mapped.Release()
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	d.install(&loaded{g: g, guard: guard, desc: desc, mapped: mapped})
	writeJSON(w, http.StatusOK, map[string]any{
		"vertices":  g.NumVertices(),
		"edges":     g.NumEdges(),
		"algorithm": string(guard.Algorithm()),
		"desc":      desc,
		"mapped":    mapped != nil && mapped.Mapped(),
	})
}

// generate builds a graph from generator query parameters.
func generate(kind string, q map[string][]string) (*graph.CSR, string, error) {
	get := func(name string, def int64) (int64, error) {
		vs := q[name]
		if len(vs) == 0 || vs[0] == "" {
			return def, nil
		}
		return strconv.ParseInt(vs[0], 10, 64)
	}
	n, err := get("n", 4096)
	if err != nil {
		return nil, "", fmt.Errorf("bad n: %v", err)
	}
	m, err := get("m", 8*n)
	if err != nil {
		return nil, "", fmt.Errorf("bad m: %v", err)
	}
	seed, err := get("seed", 1)
	if err != nil {
		return nil, "", fmt.Errorf("bad seed: %v", err)
	}
	if n <= 0 || n > mmio.MaxVertices {
		return nil, "", fmt.Errorf("n=%d out of range", n)
	}
	if m < 0 || m > 64*mmio.MaxVertices {
		// Same edge ceiling the binary reader enforces: a negative or
		// absurd m must die here, not inside a generator.
		return nil, "", fmt.Errorf("m=%d out of range [0, %d]", m, 64*mmio.MaxVertices)
	}
	var g *graph.CSR
	switch kind {
	case "rmat":
		g, err = gen.Graph500RMAT(int32(n), m, uint64(seed), gen.Options{})
	case "er":
		g, err = gen.ErdosRenyi(int32(n), m, uint64(seed), gen.Options{})
	default:
		return nil, "", fmt.Errorf("unknown generator %q (want rmat or er)", kind)
	}
	if err != nil {
		return nil, "", err
	}
	return g, fmt.Sprintf("%s(n=%d,m=%d,seed=%d)", kind, n, m, seed), nil
}

func (d *daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	cur := d.acquire()
	if cur == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no graph loaded"})
		return
	}
	// The pin taken by acquire keeps a mapped graph's pages resident for
	// the whole request — the projection and validation reads below touch
	// cur.g after the guard query returns, past the point a concurrent
	// /load swap may have retired (and otherwise unmapped) the graph.
	defer func() { cur.release() }()
	if d.testHookAfterSnapshot != nil {
		d.testHookAfterSnapshot()
	}
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "bfs":
	case "components":
		d.handleComponents(w, cur)
		return
	case "ecc":
		d.handleEcc(w, r, cur)
		return
	default:
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("unknown kind %q (want bfs, components, or ecc)", kind)})
		return
	}
	src64, err := strconv.ParseInt(r.URL.Query().Get("src"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad src: %v", err)})
		return
	}
	src := int32(src64)
	goal, dst, err := parseGoal(r, cur.g.NumVertices())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if dst >= 0 && r.URL.Query().Get("full") == "1" {
		// A dst query truncates at dst's level; its distance array is
		// deliberately partial, so handing it out as "full" would lie.
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "dst and full=1 are mutually exclusive: a goal-truncated run settles only the levels up to dst"})
		return
	}
	// Batched (fused) admission is the default; ?batch=0 opts a query
	// out to solo dispatch.
	batched := r.URL.Query().Get("batch") != "0"
	ans, err := queryGuard(r.Context(), cur, src, goal, batched)
	if errors.Is(err, serve.ErrClosed) {
		// The snapshot lost a race with a concurrent /load swap: the old
		// guard drained under us while a fresh one is serving. Re-fetch
		// (swapping the pin) and retry once before admitting defeat.
		if next := d.acquire(); next != nil {
			cur.release()
			cur = next
			ans, err = queryGuard(r.Context(), cur, src, goal, batched)
		}
	}
	if err != nil {
		if ans != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			// The budget expired but the engine surfaced the partial
			// frontier it had settled: serve it as a 504 with the usual
			// answer fields so the caller can keep the work done so far.
			resp := answerFields(src, ans)
			resp["error"] = err.Error()
			resp["partial"] = true
			addProjection(resp, r, cur, ans)
			writeJSON(w, http.StatusGatewayTimeout, resp)
			return
		}
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, serve.ErrBadSource), errors.Is(err, serve.ErrBadGoal):
			status = http.StatusBadRequest
		case errors.Is(err, serve.ErrOverloaded):
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, serve.ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	resp := answerFields(src, ans)
	if dst >= 0 {
		resp["dst"] = dst
		resp["dist"] = ans.Dist[dst]
		if ans.Parent != nil {
			resp["parent"] = ans.Parent[dst]
			if r.URL.Query().Get("path") == "1" && ans.Dist[dst] != graph.Unreached {
				resp["path"] = walkPath(src, dst, ans)
			}
		}
	}
	if r.URL.Query().Get("full") == "1" {
		resp["dist_all"] = ans.Dist
		if ans.Parent != nil {
			resp["parent_all"] = ans.Parent
		}
	}
	if r.URL.Query().Get("validate") == "1" {
		if verr := validateAnswer(cur.g, src, goal, ans); verr != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": verr.Error(), "valid": false})
			return
		}
		resp["valid"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseGoal extracts the goal-directed params: dst (target vertex) and
// k (depth bound, closed levels). Returns dst=-1 when absent. Every
// violation is the client's fault — the caller maps errors to 400.
func parseGoal(r *http.Request, n int32) (goal core.Goal, dst int32, err error) {
	dst = -1
	if dstS := r.URL.Query().Get("dst"); dstS != "" {
		dst64, derr := strconv.ParseInt(dstS, 10, 32)
		if derr != nil || dst64 < 0 || int32(dst64) >= n {
			return goal, -1, fmt.Errorf("bad dst %q: want a vertex in [0,%d)", dstS, n)
		}
		dst = int32(dst64)
		goal = core.GoalTo(dst)
	}
	if kS := r.URL.Query().Get("k"); kS != "" {
		k64, kerr := strconv.ParseInt(kS, 10, 32)
		if kerr != nil || k64 < 1 {
			return goal, -1, fmt.Errorf("bad k %q: want a positive depth bound", kS)
		}
		goal.MaxDepth = int32(k64)
	}
	return goal, dst, nil
}

// walkPath reconstructs the src→dst shortest path from the BFS tree.
func walkPath(src, dst int32, ans *serve.Answer) []int32 {
	path := make([]int32, 0, ans.Dist[dst]+1)
	for v := dst; ; v = ans.Parent[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// handleComponents serves kind=components from the per-load cache.
func (d *daemon) handleComponents(w http.ResponseWriter, cur *loaded) {
	cur.compOnce.Do(func() {
		_, sizes, err := analysis.Components(cur.g, core.Options{Workers: d.cfg.Options.Workers})
		cur.compSizes, cur.compErr = sizes, err
	})
	if cur.compErr != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": cur.compErr.Error()})
		return
	}
	var largest int64
	for _, s := range cur.compSizes {
		if s > largest {
			largest = s
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":       "components",
		"components": len(cur.compSizes),
		"largest":    largest,
	})
}

// handleEcc serves kind=ecc: one full BFS from src, reduced to the
// eccentricity of its reachable set.
func (d *daemon) handleEcc(w http.ResponseWriter, r *http.Request, cur *loaded) {
	src64, err := strconv.ParseInt(r.URL.Query().Get("src"), 10, 32)
	if err != nil || src64 < 0 || int32(src64) >= cur.g.NumVertices() {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad src %q", r.URL.Query().Get("src"))})
		return
	}
	eccs, err := analysis.Eccentricities(cur.g, []int32{int32(src64)}, core.Options{Workers: d.cfg.Options.Workers})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind": "ecc",
		"src":  src64,
		"ecc":  eccs[0],
	})
}

// queryGuard dispatches one query solo or through the fused batcher.
func queryGuard(ctx context.Context, cur *loaded, src int32, goal core.Goal, batched bool) (*serve.Answer, error) {
	if batched {
		return cur.guard.QueryFusedGoal(ctx, src, goal)
	}
	return cur.guard.QueryGoal(ctx, src, goal)
}

// answerFields builds the response fields every answer — complete or
// partial — carries.
func answerFields(src int32, ans *serve.Answer) map[string]any {
	resp := map[string]any{
		"src":             src,
		"outcome":         ans.Outcome,
		"algorithm":       string(ans.Algorithm),
		"levels":          ans.Levels,
		"reached":         ans.Reached,
		"edges_traversed": ans.EdgesTraversed,
	}
	if ans.Fused {
		resp["fused"] = true
		resp["batch_lanes"] = ans.BatchLanes
	}
	if ans.Truncated {
		resp["truncated"] = true
	}
	return resp
}

// addProjection attaches the dst/full projections to a partial-answer
// response; bad projection params are simply omitted (the request
// already failed its deadline — the error field dominates).
func addProjection(resp map[string]any, r *http.Request, cur *loaded, ans *serve.Answer) {
	if dstS := r.URL.Query().Get("dst"); dstS != "" {
		if dst64, derr := strconv.ParseInt(dstS, 10, 32); derr == nil && dst64 >= 0 && int32(dst64) < cur.g.NumVertices() {
			resp["dst"] = dst64
			resp["dist"] = ans.Dist[dst64]
			if ans.Parent != nil {
				resp["parent"] = ans.Parent[dst64]
			}
		}
	}
	if r.URL.Query().Get("full") == "1" {
		resp["dist_all"] = ans.Dist
		if ans.Parent != nil {
			resp["parent_all"] = ans.Parent
		}
	}
}

// validateAnswer checks the answer against the serial oracle and the
// structural BFS-tree rules — the daemon's self-check for CI smoke.
// Goal-directed answers are checked against the oracle's closed
// levels: exact distances up to Answer.Levels, Unreached beyond.
func validateAnswer(g *graph.CSR, src int32, goal core.Goal, ans *serve.Answer) error {
	want := graph.ReferenceBFS(g, src)
	if goal.Bounded() {
		for v, d := range ans.Dist {
			if wd := want[v]; wd != graph.Unreached && wd <= ans.Levels {
				if d != wd {
					return fmt.Errorf("bfsd: dist[%d]=%d, oracle %d (closed level)", v, d, wd)
				}
			} else if d != graph.Unreached {
				return fmt.Errorf("bfsd: dist[%d]=%d, want Unreached past level %d", v, d, ans.Levels)
			}
			if p := ans.Parent[v]; d == graph.Unreached {
				if p != -1 {
					return fmt.Errorf("bfsd: unreached %d has parent %d", v, p)
				}
			} else if int32(v) != src && (p < 0 || ans.Dist[p] != d-1) {
				return fmt.Errorf("bfsd: vertex %d depth %d has parent %d", v, d, p)
			}
		}
		if tv := goal.TargetVertex(); tv >= 0 && want[tv] != graph.Unreached &&
			(goal.MaxDepth == 0 || want[tv] <= goal.MaxDepth) && ans.Dist[tv] != want[tv] {
			return fmt.Errorf("bfsd: target %d not settled: dist=%d, oracle %d", tv, ans.Dist[tv], want[tv])
		}
		return nil
	}
	if err := graph.EqualDistances(ans.Dist, want); err != nil {
		return err
	}
	if err := graph.ValidateDistances(g, src, ans.Dist); err != nil {
		return err
	}
	if ans.Parent != nil {
		if err := graph.ValidateParents(g, src, ans.Dist, ans.Parent); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errFileTooLarge reports a path load whose file exceeds -max-body.
// File loads used to bypass the body limit entirely; the limit is the
// operator's memory budget, so it applies to every ingest route.
var errFileTooLarge = errors.New("bfsd: graph file exceeds -max-body")

// openGraphFile loads a server-side graph file by extension, applying
// the -max-body budget to the file size up front. Binary files go
// through mmio.LoadMapped: v2 files map zero-copy (the returned
// MappedGraph owns the mapping), v1 files fall back to a heap read.
// Text formats stream from the opened file. Errors keep the mmio
// taxonomy: ErrMalformed is the file's fault, everything else is I/O.
func openGraphFile(path string, maxBody int64) (*graph.CSR, *mmio.MappedGraph, string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, nil, "", fmt.Errorf("%w: %v", mmio.ErrMalformed, err)
	}
	if maxBody > 0 && fi.Size() > maxBody {
		return nil, nil, "", fmt.Errorf("%w: %d bytes > limit %d", errFileTooLarge, fi.Size(), maxBody)
	}
	if hasSuffix(path, ".bin") || hasSuffix(path, ".bin2") {
		mg, err := mmio.LoadMapped(path, mmio.MapOptions{})
		if err != nil {
			return nil, nil, "", err
		}
		return mg.Graph(), mg, path, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, "", fmt.Errorf("%w: %v", mmio.ErrMalformed, err)
	}
	defer f.Close()
	var g *graph.CSR
	if hasSuffix(path, ".mtx") {
		g, err = mmio.ReadMatrixMarket(f)
	} else {
		g, err = mmio.ReadEdgeList(f)
	}
	if err != nil {
		return nil, nil, "", err
	}
	return g, nil, path, nil
}

// loadFile serves -load at startup: a graph file by extension, under
// the same size budget and mmap path as POST /load?path=.
func loadFile(d *daemon, path string) error {
	g, mapped, desc, err := openGraphFile(path, d.maxBody)
	if err != nil {
		return err
	}
	guard, err := serve.New(g, d.cfg)
	if err != nil {
		if mapped != nil {
			mapped.Release()
		}
		return err
	}
	d.install(&loaded{g: g, guard: guard, desc: desc, mapped: mapped})
	return nil
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		algo         = flag.String("algo", string(core.BFSWL), "BFS variant to serve")
		workers      = flag.Int("workers", 0, "workers per engine (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 1, "graph shards per engine (each with its own worker set)")
		hybrid       = flag.Bool("hybrid", false, "direction-optimizing engines: bottom-up levels on large frontiers (single-source path; fused MS-BFS batches ignore it)")
		concurrency  = flag.Int("concurrency", 2, "engine fleet size (max queries in flight)")
		deadline     = flag.Duration("deadline", 5*time.Second, "default per-query deadline")
		stallTimeout = flag.Duration("stall-timeout", time.Second, "watchdog window for wedged workers")
		grace        = flag.Duration("grace", time.Second, "post-deadline grace before an engine is abandoned")
		queueWait    = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a free engine before shedding")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget on SIGTERM")
		load         = flag.String("load", "", "graph file to serve at startup (.mtx, .bin, else edge list)")
		maxBody      = flag.Int64("max-body", 1<<30, "maximum /load request body bytes")
		batch        = flag.Bool("batch", true, "fuse concurrent queries into multi-source batched runs (per-query opt-out: ?batch=0)")
		batchWindow  = flag.Duration("batch-window", time.Millisecond, "how long a batch collects lanes before dispatch")
		batchLanes   = flag.Int("batch-lanes", 64, "max fused lanes per batch (<= 64)")
	)
	flag.Parse()

	reg := obs.New()
	reg.Counter("optibfs_up").Inc()
	cfg := serve.Config{
		Algo:        core.Algorithm(*algo),
		Concurrency: *concurrency,
		Deadline:    *deadline,
		Grace:       *grace,
		QueueWait:   *queueWait,
		Options: core.Options{
			Workers:      *workers,
			Shards:       *shards,
			Hybrid:       *hybrid,
			StallTimeout: *stallTimeout,
		},
		Batch: serve.BatchConfig{
			Enabled:  *batch,
			Window:   *batchWindow,
			MaxLanes: *batchLanes,
		},
	}
	d := newDaemon(cfg, reg, *maxBody)
	if *load != "" {
		if err := loadFile(d, *load); err != nil {
			log.Fatalf("bfsd: loading %s: %v", *load, err)
		}
		log.Printf("bfsd: serving %s", d.current().desc)
	}

	srv, err := obs.ServeHandler(*addr, d.handler())
	if err != nil {
		log.Fatalf("bfsd: %v", err)
	}
	log.Printf("bfsd: listening on %s (algo=%s, concurrency=%d)", srv.Addr, *algo, *concurrency)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()

	log.Printf("bfsd: draining (budget %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("bfsd: drain incomplete: %v", err)
		srv.Close()
		code = 1
	}
	d.closeGuard()
	log.Printf("bfsd: bye")
	os.Exit(code)
}
