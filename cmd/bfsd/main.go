// Command bfsd is a long-running BFS query daemon over the hardened
// serving layer (internal/serve): load graphs into a named registry,
// then answer distance/parent queries over HTTP with panic isolation,
// stall detection, deadline budgets, global admission control with
// deadline-aware shedding, memory-budget LRU eviction, and
// serial-oracle degradation. The JSON API:
//
//	POST /load?gen=rmat&n=4096&m=32768&seed=1   load the default graph (generate)
//	POST /load?format=edges|mtx|bin             load the default graph from the body
//	POST /load?path=/data/graph.bin2            load (mmap when possible) a server-side file
//	POST /graphs/{name}?...                     same ingest routes, into a named graph
//	GET  /graphs                                list resident graphs
//	GET  /graphs/{name}                         one graph's state
//	DELETE /graphs/{name}                       evict (draining queries finish first)
//	GET  /query?src=0[&graph=name][&dst=7][&k=3][&path=1][&full=1][&validate=1][&batch=0]
//	GET  /query?kind=components                 weakly-connected components (cached per load)
//	GET  /query?kind=ecc&src=0                  eccentricity of src's reachable set
//	GET  /healthz                               liveness (always 200)
//	GET  /readyz[?graph=name]                   readiness (503 until loaded; reports graphs)
//	GET  /metrics                               Prometheus text exposition
//
// Overload semantics: queries shed by the admission controller (global
// concurrency, per-graph fair share, deadline-budget, queue caps)
// return 429 with a Retry-After derived from the controller's
// estimated wait; 503 is reserved for closed/draining/loading states
// so clients can tell backpressure from outage. Loads that cannot fit
// the memory budget even after LRU eviction return 507.
//
// dst= and k= are goal-directed: the engine terminates at the level
// barrier where dst's distance commits (or after k closed levels), so
// an s–t query costs the levels up to dst, not a whole-graph
// traversal. Truncated answers report truncated=true and are exact for
// every closed level; dst cannot be combined with full=1 because the
// distance array is deliberately partial.
//
// plus /debug/vars and /debug/pprof from the shared exposition mux.
// SIGTERM/SIGINT triggers a graceful drain: the listener closes,
// in-flight requests finish (bounded by -drain-timeout), the registry
// closes its fleets in eviction (LRU) order, and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"optibfs/internal/analysis"
	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
	"optibfs/internal/serve"
)

// defaultGraph is the name the legacy single-graph routes (/load,
// /query without graph=) operate on.
const defaultGraph = "default"

// daemon holds the HTTP state: a serve.Registry doing all the
// lifecycle work, plus cosmetic per-name descriptors.
type daemon struct {
	cfg      serve.Config
	reg      *obs.Registry
	registry *serve.Registry
	maxBody  int64

	descs sync.Map // name -> desc string (cosmetic; authoritative state is the registry's)

	// testHookAfterSnapshot fires in handleQuery between leasing the
	// graph and querying it — the window a concurrent /load swap races
	// into. Nil outside tests.
	testHookAfterSnapshot func()
}

// newDaemon builds a daemon with default admission control and no
// memory budget (the common test configuration).
func newDaemon(cfg serve.Config, reg *obs.Registry, maxBody int64) *daemon {
	return newDaemonFull(cfg, serve.AdmissionConfig{}, 0, reg, maxBody)
}

// newDaemonFull is newDaemon with explicit admission tuning and a
// memory budget (bytes; 0 = unlimited).
func newDaemonFull(cfg serve.Config, adm serve.AdmissionConfig, memBudget int64, reg *obs.Registry, maxBody int64) *daemon {
	cfg.Registry = reg
	d := &daemon{cfg: cfg, reg: reg, maxBody: maxBody}
	d.registry = serve.NewRegistry(serve.RegistryConfig{
		MemoryBudget: memBudget,
		Guard:        cfg,
		Admission:    adm,
		Obs:          reg,
	})
	return d
}

// handler mounts the API on the shared exposition mux, so /metrics,
// /debug/vars, and /debug/pprof ride along for free.
func (d *daemon) handler() http.Handler {
	mux := obs.NewServeMux(d.reg)
	mux.HandleFunc("/load", func(w http.ResponseWriter, r *http.Request) {
		d.handleLoad(w, r, defaultGraph)
	})
	mux.HandleFunc("/graphs", d.handleGraphsList)
	mux.HandleFunc("/graphs/", d.handleGraphsItem)
	mux.HandleFunc("/query", d.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("/readyz", d.handleReady)
	return mux
}

// closeGuard drains the whole registry during daemon shutdown (the
// name predates the registry; tests and main both use it).
func (d *daemon) closeGuard() {
	d.registry.Close()
}

// graphName validates a client-supplied graph name: short, path-safe,
// metric-label-safe.
func graphName(name string) (string, error) {
	if name == "" || len(name) > 64 {
		return "", fmt.Errorf("graph name must be 1-64 characters")
	}
	for _, c := range name {
		if !(c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
			return "", fmt.Errorf("graph name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return name, nil
}

// retryAfterSeconds derives the Retry-After header from an estimated
// wait: rounded up to whole seconds, clamped to [1, 30].
func retryAfterSeconds(est time.Duration) string {
	s := int64(math.Ceil(est.Seconds()))
	if s < 1 {
		s = 1
	}
	if s > 30 {
		s = 30
	}
	return strconv.FormatInt(s, 10)
}

func (d *daemon) handleReady(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("graph"); name != "" {
		info, ok := d.registry.Info(name)
		switch {
		case !ok:
			writeJSON(w, http.StatusNotFound, map[string]any{"ready": false, "error": fmt.Sprintf("graph %q not found", name)})
		case info.Loading:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "loading": true, "graph": name})
		default:
			writeJSON(w, http.StatusOK, d.graphFields(info, map[string]any{"ready": true}))
		}
		return
	}
	list := d.registry.List()
	resident := make([]map[string]any, 0, len(list))
	for _, info := range list {
		resident = append(resident, d.graphFields(info, map[string]any{}))
	}
	resp := map[string]any{"graphs": resident, "resident_bytes": d.registry.ResidentBytes()}
	if lease, err := d.registry.Acquire(defaultGraph); err == nil {
		// Legacy single-graph fields: load generators size their
		// source/target draws off these, so the ready probe doubles as
		// the default graph's descriptor.
		resp["ready"] = true
		resp["vertices"] = lease.Graph().NumVertices()
		resp["edges"] = lease.Graph().NumEdges()
		resp["desc"] = d.descOf(defaultGraph)
		resp["algorithm"] = string(lease.Guard().Algorithm())
		lease.Release()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if len(list) > 0 {
		resp["ready"] = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp["ready"] = false
	resp["error"] = "no graph loaded"
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

// graphFields renders one GraphInfo (plus the daemon's descriptor)
// into resp.
func (d *daemon) graphFields(info serve.GraphInfo, resp map[string]any) map[string]any {
	resp["graph"] = info.Name
	resp["gen"] = info.Gen
	resp["vertices"] = info.Vertices
	resp["edges"] = info.Edges
	resp["cost_bytes"] = info.Cost
	resp["mapped"] = info.Mapped
	if info.Loading {
		resp["loading"] = true
	}
	if desc := d.descOf(info.Name); desc != "" {
		resp["desc"] = desc
	}
	return resp
}

func (d *daemon) descOf(name string) string {
	if v, ok := d.descs.Load(name); ok {
		return v.(string)
	}
	return ""
}

// handleGraphsList serves GET /graphs.
func (d *daemon) handleGraphsList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "GET required"})
		return
	}
	list := d.registry.List()
	out := make([]map[string]any, 0, len(list))
	for _, info := range list {
		out = append(out, d.graphFields(info, map[string]any{}))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graphs":         out,
		"resident_bytes": d.registry.ResidentBytes(),
	})
}

// handleGraphsItem serves POST/GET/DELETE /graphs/{name}.
func (d *daemon) handleGraphsItem(w http.ResponseWriter, r *http.Request) {
	name, err := graphName(strings.TrimPrefix(r.URL.Path, "/graphs/"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	switch r.Method {
	case http.MethodPost:
		d.handleLoad(w, r, name)
	case http.MethodGet:
		info, ok := d.registry.Info(name)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("graph %q not found", name)})
			return
		}
		writeJSON(w, http.StatusOK, d.graphFields(info, map[string]any{}))
	case http.MethodDelete:
		switch err := d.registry.Evict(name); {
		case err == nil:
			d.descs.Delete(name)
			writeJSON(w, http.StatusOK, map[string]any{"evicted": name})
		case errors.Is(err, serve.ErrNotFound):
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("graph %q not found", name)})
		case errors.Is(err, serve.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "draining"})
		default:
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		}
	default:
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "POST, GET, or DELETE required"})
	}
}

// handleLoad ingests a graph (server-side file, generator, or request
// body) into the named registry slot. The parse runs inside the
// registry's single-flight loader, so concurrent loads of one name
// collapse; the parse error (if any) comes back out of Load and maps
// to the same statuses as before.
func (d *daemon) handleLoad(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "POST required"})
		return
	}
	var (
		desc   string
		source serve.GraphSource
	)
	if path := r.URL.Query().Get("path"); path != "" {
		desc = path
		maxBody := d.maxBody
		source = func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
			g, mapped, _, err := openGraphFile(path, maxBody)
			return g, mapped, err
		}
	} else if kind := r.URL.Query().Get("gen"); kind != "" {
		g, gdesc, err := generate(kind, r.URL.Query())
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		desc = gdesc
		source = func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
			return g, nil, nil
		}
	} else {
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "edges"
		}
		desc = format + " upload"
		// The body must be consumed on this request, single-flight or
		// not: parse it eagerly, then hand the result to the loader.
		body := http.MaxBytesReader(w, r.Body, d.maxBody)
		var g *graph.CSR
		var err error
		switch format {
		case "edges":
			g, err = mmio.ReadEdgeList(body)
		case "mtx":
			g, err = mmio.ReadMatrixMarket(body)
		case "bin":
			g, err = mmio.ReadBinary(body)
		default:
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("unknown format %q", format)})
			return
		}
		if err != nil {
			status := http.StatusInternalServerError
			var mbe *http.MaxBytesError
			switch {
			case errors.As(err, &mbe):
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, mmio.ErrMalformed):
				// The bytes are the client's fault; a broken stream
				// (mmio.ErrIO) stays a 500.
				status = http.StatusBadRequest
			}
			writeJSON(w, status, map[string]any{"error": err.Error()})
			return
		}
		source = func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
			return g, nil, nil
		}
	}

	if err := d.registry.Load(r.Context(), name, source); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, errFileTooLarge):
			status = http.StatusRequestEntityTooLarge
		case errors.Is(err, mmio.ErrMalformed):
			status = http.StatusBadRequest
		case errors.Is(err, serve.ErrBudgetExceeded):
			status = http.StatusInsufficientStorage
		case errors.Is(err, serve.ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	d.descs.Store(name, desc)

	// Report the installed generation (it may already have been swapped
	// or evicted by a concurrent writer; then report what Load did).
	resp := map[string]any{"graph": name, "desc": desc}
	if lease, err := d.registry.Acquire(name); err == nil {
		resp["vertices"] = lease.Graph().NumVertices()
		resp["edges"] = lease.Graph().NumEdges()
		resp["gen"] = lease.Gen()
		resp["algorithm"] = string(lease.Guard().Algorithm())
		resp["mapped"] = lease.MappedGraph() != nil && lease.MappedGraph().Mapped()
		lease.Release()
	}
	writeJSON(w, http.StatusOK, resp)
}

// generate builds a graph from generator query parameters.
func generate(kind string, q map[string][]string) (*graph.CSR, string, error) {
	get := func(name string, def int64) (int64, error) {
		vs := q[name]
		if len(vs) == 0 || vs[0] == "" {
			return def, nil
		}
		return strconv.ParseInt(vs[0], 10, 64)
	}
	n, err := get("n", 4096)
	if err != nil {
		return nil, "", fmt.Errorf("bad n: %v", err)
	}
	m, err := get("m", 8*n)
	if err != nil {
		return nil, "", fmt.Errorf("bad m: %v", err)
	}
	seed, err := get("seed", 1)
	if err != nil {
		return nil, "", fmt.Errorf("bad seed: %v", err)
	}
	if n <= 0 || n > mmio.MaxVertices {
		return nil, "", fmt.Errorf("n=%d out of range", n)
	}
	if m < 0 || m > 64*mmio.MaxVertices {
		// Same edge ceiling the binary reader enforces: a negative or
		// absurd m must die here, not inside a generator.
		return nil, "", fmt.Errorf("m=%d out of range [0, %d]", m, 64*mmio.MaxVertices)
	}
	var g *graph.CSR
	switch kind {
	case "rmat":
		g, err = gen.Graph500RMAT(int32(n), m, uint64(seed), gen.Options{})
	case "er":
		g, err = gen.ErdosRenyi(int32(n), m, uint64(seed), gen.Options{})
	default:
		return nil, "", fmt.Errorf("unknown generator %q (want rmat or er)", kind)
	}
	if err != nil {
		return nil, "", err
	}
	return g, fmt.Sprintf("%s(n=%d,m=%d,seed=%d)", kind, n, m, seed), nil
}

// beginQuery routes one query through admission + lease, writing the
// error response itself when the query cannot run. explicit reports
// whether the client named the graph (graph=); the legacy default
// route keeps its historical 503 "no graph loaded" while named routes
// get a proper 404.
func (d *daemon) beginQuery(w http.ResponseWriter, r *http.Request, name string, explicit bool) *serve.Lease {
	lease, err := d.registry.Begin(r.Context(), name)
	if err == nil {
		return lease
	}
	var shed *serve.ShedError
	switch {
	case errors.As(err, &shed):
		// Backpressure, not outage: 429 with the admission controller's
		// own wait estimate.
		w.Header().Set("Retry-After", retryAfterSeconds(shed.EstimatedWait))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":                  err.Error(),
			"shed":                   shed.Reason,
			"estimated_wait_seconds": shed.EstimatedWait.Seconds(),
		})
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", retryAfterSeconds(d.registry.EstimatedWait()))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()})
	case errors.Is(err, serve.ErrLoading):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": fmt.Sprintf("graph %q still loading", name)})
	case errors.Is(err, serve.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "draining"})
	case errors.Is(err, serve.ErrNotFound):
		if explicit {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("graph %q not found", name)})
		} else {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no graph loaded"})
		}
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]any{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	}
	return nil
}

func (d *daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("graph")
	explicit := name != ""
	if !explicit {
		name = defaultGraph
	} else if _, err := graphName(name); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	lease := d.beginQuery(w, r, name, explicit)
	if lease == nil {
		return
	}
	// The lease pins the graph generation for the whole request: the
	// projection and validation reads below touch the CSR after the
	// guard query returns, past the point a concurrent swap/evict may
	// have retired (and otherwise unmapped) the graph.
	defer func() { lease.Release() }()
	if d.testHookAfterSnapshot != nil {
		d.testHookAfterSnapshot()
	}
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "bfs":
	case "components":
		d.handleComponents(w, lease)
		return
	case "ecc":
		d.handleEcc(w, r, lease)
		return
	default:
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("unknown kind %q (want bfs, components, or ecc)", kind)})
		return
	}
	src64, err := strconv.ParseInt(r.URL.Query().Get("src"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad src: %v", err)})
		return
	}
	src := int32(src64)
	goal, dst, err := parseGoal(r, lease.Graph().NumVertices())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if dst >= 0 && r.URL.Query().Get("full") == "1" {
		// A dst query truncates at dst's level; its distance array is
		// deliberately partial, so handing it out as "full" would lie.
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "dst and full=1 are mutually exclusive: a goal-truncated run settles only the levels up to dst"})
		return
	}
	// Batched (fused) admission is the default; ?batch=0 opts a query
	// out to solo dispatch.
	batched := r.URL.Query().Get("batch") != "0"
	ans, err := queryLease(r.Context(), lease, src, goal, batched)
	if errors.Is(err, serve.ErrClosed) {
		// The lease lost a race with a concurrent swap/evict: the old
		// guard drained under us while a fresh generation may be
		// serving. Re-lease (releasing the old pin) and retry once
		// before admitting defeat.
		if next, nerr := d.registry.Begin(r.Context(), name); nerr == nil {
			lease.Release()
			lease = next
			ans, err = queryLease(r.Context(), lease, src, goal, batched)
		}
	}
	if err != nil {
		if ans != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			// The budget expired but the engine surfaced the partial
			// frontier it had settled: serve it as a 504 with the usual
			// answer fields so the caller can keep the work done so far.
			resp := answerFields(src, ans)
			resp["error"] = err.Error()
			resp["partial"] = true
			addProjection(resp, r, lease.Graph(), ans)
			writeJSON(w, http.StatusGatewayTimeout, resp)
			return
		}
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, serve.ErrBadSource), errors.Is(err, serve.ErrBadGoal):
			status = http.StatusBadRequest
		case errors.Is(err, serve.ErrOverloaded):
			// Guard-level shed: the fleet stayed busy past its queue
			// wait. Same backpressure semantics as an admission shed.
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", retryAfterSeconds(d.registry.EstimatedWait()))
		case errors.Is(err, serve.ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	resp := answerFields(src, ans)
	if explicit {
		resp["graph"] = name
		resp["graph_gen"] = lease.Gen()
	}
	if dst >= 0 {
		resp["dst"] = dst
		resp["dist"] = ans.Dist[dst]
		if ans.Parent != nil {
			resp["parent"] = ans.Parent[dst]
			if r.URL.Query().Get("path") == "1" && ans.Dist[dst] != graph.Unreached {
				resp["path"] = walkPath(src, dst, ans)
			}
		}
	}
	if r.URL.Query().Get("full") == "1" {
		resp["dist_all"] = ans.Dist
		if ans.Parent != nil {
			resp["parent_all"] = ans.Parent
		}
	}
	if r.URL.Query().Get("validate") == "1" {
		if verr := validateAnswer(lease.Graph(), src, goal, ans); verr != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": verr.Error(), "valid": false})
			return
		}
		resp["valid"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseGoal extracts the goal-directed params: dst (target vertex) and
// k (depth bound, closed levels). Returns dst=-1 when absent. Every
// violation is the client's fault — the caller maps errors to 400.
func parseGoal(r *http.Request, n int32) (goal core.Goal, dst int32, err error) {
	dst = -1
	if dstS := r.URL.Query().Get("dst"); dstS != "" {
		dst64, derr := strconv.ParseInt(dstS, 10, 32)
		if derr != nil || dst64 < 0 || int32(dst64) >= n {
			return goal, -1, fmt.Errorf("bad dst %q: want a vertex in [0,%d)", dstS, n)
		}
		dst = int32(dst64)
		goal = core.GoalTo(dst)
	}
	if kS := r.URL.Query().Get("k"); kS != "" {
		k64, kerr := strconv.ParseInt(kS, 10, 32)
		if kerr != nil || k64 < 1 {
			return goal, -1, fmt.Errorf("bad k %q: want a positive depth bound", kS)
		}
		goal.MaxDepth = int32(k64)
	}
	return goal, dst, nil
}

// walkPath reconstructs the src→dst shortest path from the BFS tree.
func walkPath(src, dst int32, ans *serve.Answer) []int32 {
	path := make([]int32, 0, ans.Dist[dst]+1)
	for v := dst; ; v = ans.Parent[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// compCache is the per-generation components cache, living in the
// lease's Ext map so a swap naturally invalidates it.
type compCache struct {
	once  sync.Once
	sizes []int64
	err   error
}

// handleComponents serves kind=components from the per-generation cache.
func (d *daemon) handleComponents(w http.ResponseWriter, lease *serve.Lease) {
	ci, _ := lease.Ext().LoadOrStore("components", &compCache{})
	c := ci.(*compCache)
	c.once.Do(func() {
		_, sizes, err := analysis.Components(lease.Graph(), core.Options{Workers: d.cfg.Options.Workers})
		c.sizes, c.err = sizes, err
	})
	if c.err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": c.err.Error()})
		return
	}
	var largest int64
	for _, s := range c.sizes {
		if s > largest {
			largest = s
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":       "components",
		"components": len(c.sizes),
		"largest":    largest,
	})
}

// handleEcc serves kind=ecc: one full BFS from src, reduced to the
// eccentricity of its reachable set.
func (d *daemon) handleEcc(w http.ResponseWriter, r *http.Request, lease *serve.Lease) {
	g := lease.Graph()
	src64, err := strconv.ParseInt(r.URL.Query().Get("src"), 10, 32)
	if err != nil || src64 < 0 || int32(src64) >= g.NumVertices() {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad src %q", r.URL.Query().Get("src"))})
		return
	}
	eccs, err := analysis.Eccentricities(g, []int32{int32(src64)}, core.Options{Workers: d.cfg.Options.Workers})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kind": "ecc",
		"src":  src64,
		"ecc":  eccs[0],
	})
}

// queryLease dispatches one query solo or through the fused batcher.
func queryLease(ctx context.Context, lease *serve.Lease, src int32, goal core.Goal, batched bool) (*serve.Answer, error) {
	if batched {
		return lease.Guard().QueryFusedGoal(ctx, src, goal)
	}
	return lease.Guard().QueryGoal(ctx, src, goal)
}

// answerFields builds the response fields every answer — complete or
// partial — carries.
func answerFields(src int32, ans *serve.Answer) map[string]any {
	resp := map[string]any{
		"src":             src,
		"outcome":         ans.Outcome,
		"algorithm":       string(ans.Algorithm),
		"levels":          ans.Levels,
		"reached":         ans.Reached,
		"edges_traversed": ans.EdgesTraversed,
	}
	if ans.Fused {
		resp["fused"] = true
		resp["batch_lanes"] = ans.BatchLanes
	}
	if ans.Truncated {
		resp["truncated"] = true
	}
	return resp
}

// addProjection attaches the dst/full projections to a partial-answer
// response; bad projection params are simply omitted (the request
// already failed its deadline — the error field dominates).
func addProjection(resp map[string]any, r *http.Request, g *graph.CSR, ans *serve.Answer) {
	if dstS := r.URL.Query().Get("dst"); dstS != "" {
		if dst64, derr := strconv.ParseInt(dstS, 10, 32); derr == nil && dst64 >= 0 && int32(dst64) < g.NumVertices() {
			resp["dst"] = dst64
			resp["dist"] = ans.Dist[dst64]
			if ans.Parent != nil {
				resp["parent"] = ans.Parent[dst64]
			}
		}
	}
	if r.URL.Query().Get("full") == "1" {
		resp["dist_all"] = ans.Dist
		if ans.Parent != nil {
			resp["parent_all"] = ans.Parent
		}
	}
}

// validateAnswer checks the answer against the serial oracle and the
// structural BFS-tree rules — the daemon's self-check for CI smoke.
// Goal-directed answers are checked against the oracle's closed
// levels: exact distances up to Answer.Levels, Unreached beyond.
func validateAnswer(g *graph.CSR, src int32, goal core.Goal, ans *serve.Answer) error {
	want := graph.ReferenceBFS(g, src)
	if goal.Bounded() {
		for v, d := range ans.Dist {
			if wd := want[v]; wd != graph.Unreached && wd <= ans.Levels {
				if d != wd {
					return fmt.Errorf("bfsd: dist[%d]=%d, oracle %d (closed level)", v, d, wd)
				}
			} else if d != graph.Unreached {
				return fmt.Errorf("bfsd: dist[%d]=%d, want Unreached past level %d", v, d, ans.Levels)
			}
			if p := ans.Parent[v]; d == graph.Unreached {
				if p != -1 {
					return fmt.Errorf("bfsd: unreached %d has parent %d", v, p)
				}
			} else if int32(v) != src && (p < 0 || ans.Dist[p] != d-1) {
				return fmt.Errorf("bfsd: vertex %d depth %d has parent %d", v, d, p)
			}
		}
		if tv := goal.TargetVertex(); tv >= 0 && want[tv] != graph.Unreached &&
			(goal.MaxDepth == 0 || want[tv] <= goal.MaxDepth) && ans.Dist[tv] != want[tv] {
			return fmt.Errorf("bfsd: target %d not settled: dist=%d, oracle %d", tv, ans.Dist[tv], want[tv])
		}
		return nil
	}
	if err := graph.EqualDistances(ans.Dist, want); err != nil {
		return err
	}
	if err := graph.ValidateDistances(g, src, ans.Dist); err != nil {
		return err
	}
	if ans.Parent != nil {
		if err := graph.ValidateParents(g, src, ans.Dist, ans.Parent); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errFileTooLarge reports a path load whose file exceeds -max-body.
// File loads used to bypass the body limit entirely; the limit is the
// operator's memory budget, so it applies to every ingest route.
var errFileTooLarge = errors.New("bfsd: graph file exceeds -max-body")

// openGraphFile loads a server-side graph file by extension, applying
// the -max-body budget to the file size up front. Binary files go
// through mmio.LoadMapped: v2 files map zero-copy (the returned
// MappedGraph owns the mapping), v1 files fall back to a heap read.
// Text formats stream from the opened file. Errors keep the mmio
// taxonomy: ErrMalformed is the file's fault, everything else is I/O.
func openGraphFile(path string, maxBody int64) (*graph.CSR, *mmio.MappedGraph, string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, nil, "", fmt.Errorf("%w: %v", mmio.ErrMalformed, err)
	}
	if maxBody > 0 && fi.Size() > maxBody {
		return nil, nil, "", fmt.Errorf("%w: %d bytes > limit %d", errFileTooLarge, fi.Size(), maxBody)
	}
	if hasSuffix(path, ".bin") || hasSuffix(path, ".bin2") {
		mg, err := mmio.LoadMapped(path, mmio.MapOptions{})
		if err != nil {
			return nil, nil, "", err
		}
		return mg.Graph(), mg, path, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, "", fmt.Errorf("%w: %v", mmio.ErrMalformed, err)
	}
	defer f.Close()
	var g *graph.CSR
	if hasSuffix(path, ".mtx") {
		g, err = mmio.ReadMatrixMarket(f)
	} else {
		g, err = mmio.ReadEdgeList(f)
	}
	if err != nil {
		return nil, nil, "", err
	}
	return g, nil, path, nil
}

// loadFile serves -load at startup: a graph file by extension, under
// the same size budget and mmap path as POST /load?path=, installed as
// the default graph.
func loadFile(d *daemon, path string) error {
	maxBody := d.maxBody
	err := d.registry.Load(context.Background(), defaultGraph,
		func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
			g, mapped, _, err := openGraphFile(path, maxBody)
			return g, mapped, err
		})
	if err != nil {
		return err
	}
	d.descs.Store(defaultGraph, path)
	return nil
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		algo         = flag.String("algo", string(core.BFSWL), "BFS variant to serve")
		workers      = flag.Int("workers", 0, "workers per engine (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 1, "graph shards per engine (each with its own worker set)")
		hybrid       = flag.Bool("hybrid", false, "direction-optimizing engines: bottom-up levels on large frontiers (single-source path; fused MS-BFS batches ignore it)")
		concurrency  = flag.Int("concurrency", 2, "engine fleet size per graph (max queries in flight per graph)")
		deadline     = flag.Duration("deadline", 5*time.Second, "default per-query deadline")
		stallTimeout = flag.Duration("stall-timeout", time.Second, "watchdog window for wedged workers")
		grace        = flag.Duration("grace", time.Second, "post-deadline grace before an engine is abandoned")
		queueWait    = flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a free engine before shedding")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget on SIGTERM")
		load         = flag.String("load", "", "graph file to serve at startup as the default graph (.mtx, .bin, else edge list)")
		maxBody      = flag.Int64("max-body", 1<<30, "maximum /load request body bytes")
		batch        = flag.Bool("batch", true, "fuse concurrent queries into multi-source batched runs (per-query opt-out: ?batch=0)")
		batchWindow  = flag.Duration("batch-window", time.Millisecond, "how long a batch collects lanes before dispatch")
		batchLanes   = flag.Int("batch-lanes", 64, "max fused lanes per batch (<= 64)")
		memBudget    = flag.Int64("mem-budget", 0, "registry memory budget in bytes: inserts past it evict idle graphs LRU-first (0 = unlimited)")
		admInflight  = flag.Int("admit-inflight", 0, "global concurrent-query cap across all graphs (0 = max(8, 2×GOMAXPROCS))")
		admQueue     = flag.Int("admit-queue", 0, "admission queue depth (0 = 256, negative = shed immediately when saturated)")
		admQueueWait = flag.Duration("admit-queue-wait", time.Second, "max admission-queue wait before shedding")
	)
	flag.Parse()

	reg := obs.New()
	reg.Counter("optibfs_up").Inc()
	cfg := serve.Config{
		Algo:        core.Algorithm(*algo),
		Concurrency: *concurrency,
		Deadline:    *deadline,
		Grace:       *grace,
		QueueWait:   *queueWait,
		Options: core.Options{
			Workers:      *workers,
			Shards:       *shards,
			Hybrid:       *hybrid,
			StallTimeout: *stallTimeout,
		},
		Batch: serve.BatchConfig{
			Enabled:  *batch,
			Window:   *batchWindow,
			MaxLanes: *batchLanes,
		},
	}
	adm := serve.AdmissionConfig{
		MaxInFlight: *admInflight,
		MaxQueue:    *admQueue,
		QueueWait:   *admQueueWait,
	}
	d := newDaemonFull(cfg, adm, *memBudget, reg, *maxBody)
	if *load != "" {
		if err := loadFile(d, *load); err != nil {
			log.Fatalf("bfsd: loading %s: %v", *load, err)
		}
		log.Printf("bfsd: serving %s as %q", *load, defaultGraph)
	}

	srv, err := obs.ServeHandler(*addr, d.handler())
	if err != nil {
		log.Fatalf("bfsd: %v", err)
	}
	log.Printf("bfsd: listening on %s (algo=%s, concurrency=%d)", srv.Addr, *algo, *concurrency)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()

	log.Printf("bfsd: draining (budget %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("bfsd: drain incomplete: %v", err)
		srv.Close()
		code = 1
	}
	// Close the registry: fleets drain and close in eviction (LRU)
	// order, mappings release after their last reader.
	d.closeGuard()
	log.Printf("bfsd: bye")
	os.Exit(code)
}
