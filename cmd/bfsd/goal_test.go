package main

import (
	"fmt"
	"net/http"
	"testing"
)

// TestGoalParamValidation is the table for the goal-directed query
// params: every bad combination dies with a 400 before any engine
// runs, with the error body naming the offending parameter.
func TestGoalParamValidation(t *testing.T) {
	_, ts := testDaemon(t)
	postJSON(t, ts.URL+"/load?gen=er&n=256&m=1024&seed=4", "", http.StatusOK)

	cases := []struct {
		name  string
		query string
	}{
		{"dst out of range", "src=0&dst=256"},
		{"dst negative", "src=0&dst=-1"},
		{"dst garbage", "src=0&dst=banana"},
		{"k zero", "src=0&k=0"},
		{"k negative", "src=0&k=-3"},
		{"k garbage", "src=0&k=x"},
		{"dst with full", "src=0&dst=5&full=1"},
		{"unknown kind", "src=0&kind=pagerank"},
		{"ecc bad src", "kind=ecc&src=999"},
		{"ecc missing src", "kind=ecc"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := getJSON(t, ts.URL+"/query?"+c.query, http.StatusBadRequest)
			if m["error"] == nil {
				t.Fatalf("%s: 400 without an error field: %v", c.query, m)
			}
		})
	}
}

// TestGoalQueries: dst= and k= terminate early, report truncated, and
// self-validate against the oracle's closed levels; kind=components
// and kind=ecc answer from the analysis layer.
func TestGoalQueries(t *testing.T) {
	_, ts := testDaemon(t)
	// A 64-vertex path: distances are the vertex ids, so every
	// projection is predictable.
	var edges string
	for i := 0; i < 63; i++ {
		edges += fmt.Sprintf("%d %d\n", i, i+1)
	}
	postJSON(t, ts.URL+"/load", edges, http.StatusOK)

	// s–t: terminate at dst's level, exact distance, truncated.
	q := getJSON(t, ts.URL+"/query?src=0&dst=5&validate=1", http.StatusOK)
	if q["dist"].(float64) != 5 || q["truncated"] != true || q["valid"] != true {
		t.Fatalf("dst query: %v", q)
	}
	if q["levels"].(float64) != 5 {
		t.Fatalf("dst query closed levels = %v, want 5", q["levels"])
	}

	// Path reconstruction off the truncated BFS tree.
	p := getJSON(t, ts.URL+"/query?src=0&dst=4&path=1", http.StatusOK)
	path := p["path"].([]any)
	if len(path) != 5 {
		t.Fatalf("path = %v, want 0..4", path)
	}
	for i, v := range path {
		if v.(float64) != float64(i) {
			t.Fatalf("path[%d] = %v, want %d", i, v, i)
		}
	}

	// k-hop: k closed levels, deeper vertices unreported.
	k := getJSON(t, ts.URL+"/query?src=0&k=3&validate=1&full=1", http.StatusOK)
	if k["truncated"] != true || k["valid"] != true || k["levels"].(float64) != 3 {
		t.Fatalf("k query: %v", k)
	}
	dist := k["dist_all"].([]any)
	if dist[3].(float64) != 3 || dist[4].(float64) == 4 {
		t.Fatalf("k=3 dist_all: settled %v at 3, %v at 4", dist[3], dist[4])
	}

	// dst+k combined: whichever fires first wins (here the depth bound).
	dk := getJSON(t, ts.URL+"/query?src=0&dst=40&k=2", http.StatusOK)
	if dk["truncated"] != true || dk["levels"].(float64) != 2 {
		t.Fatalf("dst+k query: %v", dk)
	}

	// An unbounded query afterward is not truncated.
	u := getJSON(t, ts.URL+"/query?src=0&validate=1", http.StatusOK)
	if _, ok := u["truncated"]; ok {
		t.Fatalf("unbounded query truncated: %v", u)
	}

	// Analysis kinds.
	comp := getJSON(t, ts.URL+"/query?kind=components", http.StatusOK)
	if comp["components"].(float64) != 1 || comp["largest"].(float64) != 64 {
		t.Fatalf("components: %v", comp)
	}
	ecc := getJSON(t, ts.URL+"/query?kind=ecc&src=0", http.StatusOK)
	if ecc["ecc"].(float64) != 63 {
		t.Fatalf("ecc: %v", ecc)
	}
}
