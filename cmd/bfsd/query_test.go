package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
	"optibfs/internal/serve"
)

// TestGeneratorParamValidation: the bad-parameter matrix for /load's
// generators must die with 400s before reaching a generator.
func TestGeneratorParamValidation(t *testing.T) {
	_, ts := testDaemon(t)
	cases := []struct {
		name  string
		query string
		want  int
	}{
		{"negative m", "gen=rmat&n=64&m=-1", http.StatusBadRequest},
		{"huge m", "gen=rmat&n=64&m=99999999999999", http.StatusBadRequest},
		{"negative m er", "gen=er&n=64&m=-5", http.StatusBadRequest},
		{"zero n", "gen=rmat&n=0&m=8", http.StatusBadRequest},
		{"negative n", "gen=rmat&n=-4&m=8", http.StatusBadRequest},
		{"huge n", "gen=rmat&n=999999999999&m=8", http.StatusBadRequest},
		{"unparsable n", "gen=rmat&n=banana", http.StatusBadRequest},
		{"unparsable m", "gen=rmat&n=64&m=banana", http.StatusBadRequest},
		{"unparsable seed", "gen=rmat&n=64&m=128&seed=banana", http.StatusBadRequest},
		{"unknown generator", "gen=tree&n=64&m=128", http.StatusBadRequest},
		{"valid rmat", "gen=rmat&n=64&m=256&seed=2", http.StatusOK},
		{"valid er", "gen=er&n=64&m=256&seed=2", http.StatusOK},
		{"m zero ok", "gen=er&n=64&m=0", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			postJSON(t, ts.URL+"/load?"+tc.query, "", tc.want)
		})
	}
}

// TestQuerySurvivesLoadSwap forces the /load-swap race: the handler's
// guard snapshot is synchronously closed (as a drained old guard after
// a swap) before the query runs. The ErrClosed retry must re-fetch the
// fresh guard and answer 200 instead of 503.
func TestQuerySurvivesLoadSwap(t *testing.T) {
	d, ts := testDaemon(t)
	postJSON(t, ts.URL+"/load?gen=er&n=256&m=1024&seed=4", "", http.StatusOK)

	var once sync.Once
	d.testHookAfterSnapshot = func() {
		once.Do(func() {
			oldLease, err := d.registry.Acquire(defaultGraph)
			if err != nil {
				t.Error(err)
				return
			}
			oldGuard := oldLease.Guard()
			oldLease.Release()
			g2, err := gen.ErdosRenyi(256, 1024, 9, gen.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if err := d.registry.Load(context.Background(), defaultGraph,
				func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
					return g2, nil, nil
				}); err != nil {
				t.Error(err)
				return
			}
			// Synchronous close (idempotent with the async retire): the
			// guard the in-flight query leased is fully drained before
			// the query dispatches into it.
			oldGuard.Close()
		})
	}
	q := getJSON(t, ts.URL+"/query?src=0&validate=1", http.StatusOK)
	if q["valid"] != true {
		t.Fatalf("post-swap query: %v", q)
	}
}

// TestPartialAnswerOn504: a query whose deadline expires mid-run gets
// a 504 carrying the partial answer fields, on both the fused and the
// solo path.
func TestPartialAnswerOn504(t *testing.T) {
	d := newDaemon(serve.Config{
		Algo:        core.BFSWL,
		Concurrency: 1,
		Deadline:    60 * time.Millisecond,
		Grace:       5 * time.Second,
		Batch:       serve.BatchConfig{Enabled: true, Window: time.Millisecond},
		Options: core.Options{
			Workers:      2,
			StallTimeout: time.Minute, // slow progress is not a stall
			Chaos:        slowHook(20 * time.Millisecond),
		},
	}, obs.New(), 1<<20)
	ts := httptest.NewServer(d.handler())
	defer func() {
		ts.Close()
		d.closeGuard()
	}()
	postJSON(t, ts.URL+"/load?gen=er&n=2000&m=12000&seed=7", "", http.StatusOK)

	for _, mode := range []string{"", "&batch=0"} {
		q := getJSON(t, ts.URL+"/query?src=0&full=1"+mode, http.StatusGatewayTimeout)
		if q["outcome"] != "deadline" {
			t.Fatalf("mode %q: outcome = %v, want deadline (body %v)", mode, q["outcome"], q)
		}
		if q["partial"] != true {
			t.Fatalf("mode %q: partial flag missing: %v", mode, q)
		}
		if q["error"] == nil || q["dist_all"] == nil {
			t.Fatalf("mode %q: 504 must carry error and partial dist_all", mode)
		}
		if n := len(q["dist_all"].([]any)); n != 2000 {
			t.Fatalf("mode %q: dist_all has %d entries, want 2000", mode, n)
		}
	}
}

// slowHook is a ChaosHook that sleeps at every level barrier.
type slowHook time.Duration

func (s slowHook) At(p core.ChaosPoint, _ int, _ int64) {
	if p == core.ChaosStall {
		time.Sleep(time.Duration(s))
	}
}

// TestBatchOptOutAndFusedMarking: concurrent default-path queries fuse
// (answers say so); a lone query in its window solo-dispatches off the
// fused engine (the singleton regression fix); ?batch=0 opts out
// entirely.
func TestBatchOptOutAndFusedMarking(t *testing.T) {
	d := newDaemon(serve.Config{
		Algo:        core.BFSWL,
		Concurrency: 1,
		Deadline:    10 * time.Second,
		Options:     core.Options{Workers: 2},
		Batch:       serve.BatchConfig{Enabled: true, Window: 250 * time.Millisecond, MaxLanes: 2},
	}, obs.New(), 1<<20)
	ts := httptest.NewServer(d.handler())
	defer func() {
		ts.Close()
		d.closeGuard()
	}()
	postJSON(t, ts.URL+"/load?gen=er&n=256&m=1024&seed=4", "", http.StatusOK)

	// Two concurrent queries seat in one window (MaxLanes 2 dispatches
	// the moment both arrive) and come back fused.
	fused := make([]map[string]any, 2)
	var wg sync.WaitGroup
	for i := range fused {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fused[i] = getJSON(t, fmt.Sprintf("%s/query?src=%d&validate=1", ts.URL, i*7), http.StatusOK)
		}(i)
	}
	wg.Wait()
	for i, m := range fused {
		if m["fused"] != true {
			t.Fatalf("concurrent query %d not fused: %v", i, m)
		}
		if m["algorithm"] != string(core.MSBFSL) {
			t.Fatalf("fused algorithm = %v, want %s", m["algorithm"], core.MSBFSL)
		}
		if lanes := m["batch_lanes"].(float64); lanes != 2 {
			t.Fatalf("batch_lanes = %v, want 2", lanes)
		}
	}

	// A lone query's window collapses to a singleton: it must dodge the
	// fused engine and run on the solo fleet.
	lone := getJSON(t, ts.URL+"/query?src=0&validate=1", http.StatusOK)
	if _, ok := lone["fused"]; ok {
		t.Fatalf("singleton window still fused: %v", lone)
	}
	if lone["algorithm"] != string(core.BFSWL) {
		t.Fatalf("singleton algorithm = %v, want solo %s", lone["algorithm"], core.BFSWL)
	}

	solo := getJSON(t, ts.URL+"/query?src=0&validate=1&batch=0", http.StatusOK)
	if _, ok := solo["fused"]; ok {
		t.Fatalf("?batch=0 still fused: %v", solo)
	}
	if solo["algorithm"] != string(core.BFSWL) {
		t.Fatalf("solo algorithm = %v, want %s", solo["algorithm"], core.BFSWL)
	}
}

// TestConcurrentFusedQueriesValidate is the in-process twin of the
// smoke script's batcher check: 64 concurrent validated queries, all
// fused, with the occupancy metrics populated.
func TestConcurrentFusedQueriesValidate(t *testing.T) {
	d, ts := testDaemon(t)
	postJSON(t, ts.URL+"/load?gen=rmat&n=512&m=4096&seed=3", "", http.StatusOK)
	lease, err := d.registry.Acquire(defaultGraph)
	if err != nil {
		t.Fatal(err)
	}
	n := lease.Graph().NumVertices()
	lease.Release()

	const q = 64
	errs := make([]error, q)
	var wg sync.WaitGroup
	for i := 0; i < q; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := int32(i*17) % n
			url := fmt.Sprintf("%s/query?src=%d&validate=1", ts.URL, src)
			resp, err := http.Get(url)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var m map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				errs[i] = fmt.Errorf("query %d: decoding: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK || m["valid"] != true {
				errs[i] = fmt.Errorf("query %d: status %d body %v", i, resp.StatusCode, m)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if c := d.reg.Counter("optibfs_serve_fused_lanes_total").Value(); c < q/2 {
		t.Fatalf("fused lanes = %d, want most of %d queries fused", c, q)
	}
	if h := d.reg.Histogram("optibfs_serve_batch_lanes",
		[]float64{1, 2, 4, 8, 16, 32, 48, 64}); h.Count() < 1 {
		t.Fatal("batch occupancy histogram never observed")
	}
}
