package main

import (
	"os"
	"path/filepath"
	"testing"

	"optibfs/internal/mmio"
)

func genFile(t *testing.T, kind, suite, format, out string) error {
	t.Helper()
	return run(kind, suite, 64, 256, 5, 2.2, 8, 8, 4, 4096, 1, format, out)
}

func TestGenerateEveryKind(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"rmat", "powerlaw", "layered", "er", "ba", "smallworld", "grid2d", "grid3d", "star", "path", "complete", "tree"} {
		out := filepath.Join(dir, kind+".bin")
		if err := genFile(t, kind, "", "bin", out); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		g, err := mmio.ReadBinary(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: reload: %v", kind, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s: empty graph", kind)
		}
	}
}

func TestGenerateSuiteGraph(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "wiki.mtx")
	if err := genFile(t, "", "wikipedia", "mtx", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := mmio.ReadMatrixMarket(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("suite graph empty")
	}
}

func TestGenerateEdgeListFormat(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.edges")
	if err := genFile(t, "er", "", "edges", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := mmio.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 256 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := genFile(t, "hypercube", "", "bin", ""); err == nil {
		t.Fatal("accepted unknown kind")
	}
	if err := genFile(t, "", "unknown-suite", "bin", ""); err == nil {
		t.Fatal("accepted unknown suite graph")
	}
	if err := genFile(t, "er", "", "parquet", os.DevNull); err == nil {
		t.Fatal("accepted unknown format")
	}
}
