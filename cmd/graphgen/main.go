// Command graphgen generates synthetic graphs and writes them to disk.
//
// Usage:
//
//	graphgen -kind rmat -n 1048576 -m 16777216 -o graph.bin
//	graphgen -kind powerlaw -gamma 2.2 -n 65536 -m 1048576 -format mtx -o wiki.mtx
//	graphgen -suite wikipedia -scale 64 -o wiki.bin   # paper Table IV stand-in
//
// Formats: bin (compact binary CSR, default), bin2 (aligned v2 binary,
// mmap-loadable zero-copy), mtx (MatrixMarket), edges (text edge list).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/harness"
	"optibfs/internal/mmio"
)

func main() {
	var (
		kind   = flag.String("kind", "rmat", "generator: rmat|powerlaw|layered|er|ba|smallworld|grid2d|grid3d|star|path|complete|tree")
		suite  = flag.String("suite", "", "generate a paper Table IV stand-in (cage15, wikipedia, ...) instead of -kind")
		n      = flag.Int("n", 1<<16, "vertices")
		m      = flag.Int64("m", 1<<20, "edges (random generators)")
		layers = flag.Int("layers", 20, "layers for -kind layered")
		gamma  = flag.Float64("gamma", 2.2, "power-law exponent for -kind powerlaw")
		rows   = flag.Int("rows", 256, "rows for grid2d")
		cols   = flag.Int("cols", 256, "cols for grid2d")
		depth  = flag.Int("depth", 32, "z dimension for grid3d")
		scale  = flag.Int("scale", 64, "size divisor for -suite")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "bin", "output format: bin|bin2|mtx|edges (bin2 mmaps zero-copy)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*kind, *suite, int32(*n), *m, int32(*layers), *gamma,
		int32(*rows), int32(*cols), int32(*depth), *scale, *seed, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(kind, suite string, n int32, m int64, layers int32, gamma float64,
	rows, cols, depth int32, scale int, seed uint64, format, out string) error {
	var g *graph.CSR
	var err error
	if suite != "" {
		spec, serr := harness.SpecByName(suite)
		if serr != nil {
			return serr
		}
		g, err = spec.Generate(scale)
	} else {
		switch kind {
		case "rmat":
			g, err = gen.Graph500RMAT(n, m, seed, gen.Options{})
		case "powerlaw":
			g, err = gen.ChungLu(n, m, gamma, seed, gen.Options{})
		case "layered":
			g, err = gen.LayeredRandom(n, m, layers, seed, gen.Options{})
		case "er":
			g, err = gen.ErdosRenyi(n, m, seed, gen.Options{})
		case "ba":
			g, err = gen.BarabasiAlbert(n, int(m/int64(n))+1, seed, gen.Options{})
		case "smallworld":
			g, err = gen.WattsStrogatz(n, 2*(int(m/int64(n))/2+1), 0.1, seed, gen.Options{})
		case "grid2d":
			g, err = gen.Grid2D(rows, cols, false)
		case "grid3d":
			g, err = gen.Grid3D(rows, cols, depth)
		case "star":
			g, err = gen.Star(n)
		case "path":
			g, err = gen.Path(n)
		case "complete":
			g, err = gen.Complete(n)
		case "tree":
			g, err = gen.BinaryTree(n)
		default:
			return fmt.Errorf("unknown kind %q", kind)
		}
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, ferr := os.Create(out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "bin":
		err = mmio.WriteBinary(w, g)
	case "bin2":
		err = mmio.WriteBinaryV2(w, g)
	case "mtx":
		err = mmio.WriteMatrixMarket(w, g)
	case "edges":
		err = mmio.WriteEdgeList(w, g)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %s (n=%d m=%d avg-deg=%.1f)\n",
		formatTarget(out), g.NumVertices(), g.NumEdges(), g.AvgDegree())
	return nil
}

func formatTarget(out string) string {
	if out == "" {
		return "stdout"
	}
	return out
}
