// Command bfsload is a load generator for bfsd: it drives a running
// daemon with a weighted mix of query templates — goal-directed s–t
// queries, k-hop neighborhoods, full single-source BFS, connected
// components, and eccentricities — under either a closed loop (each
// worker fires its next query the moment the last returns) or an open
// loop (a global arrival rate, so queueing delay shows up in the tail
// instead of being absorbed by backpressure).
//
//	bfsload -addr http://127.0.0.1:8090 -duration 30s -concurrency 16
//	bfsload -rate 2000 -mix 'st=50,khop=25,full=15,components=5,ecc=5'
//	bfsload -validate -slo-p99 250ms -json bench.json
//	bfsload -graphs a,b,c -shed-budget 0.2
//	bfsload -overload-sweep 2,4,8,16,32,64 -json curve.json
//
// The target's graph is discovered from /readyz (vertex count sizes
// the source/target draws); -graphs spreads queries across named
// graphs in the daemon's registry. Responses are classified into
// admitted (200), shed (429 — the admission controller's deliberate
// backpressure), and hard errors (everything else); sheds are reported
// separately and never count as errors. Goodput is admitted-and-valid
// QPS. Latencies are recorded per template and reported as exact
// percentiles from the raw samples; admitted-only percentiles ride
// along so backpressure can't hide behind fast 429s. -json writes a
// machine-readable report.
//
// -overload-sweep runs the closed loop once per listed concurrency
// level and emits a goodput/p99 curve — the overload test: past
// saturation, goodput should plateau instead of collapsing, and the
// admitted tail should stay bounded.
//
// The exit code is the SLO verdict: 1 if any validation failed, the
// measured p99 exceeds -slo-p99, or the shed fraction exceeds
// -shed-budget; 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"optibfs/internal/obs"
	"optibfs/internal/rng"
)

// kinds is the template order used everywhere (stable output).
var kinds = []string{"st", "khop", "full", "components", "ecc"}

// mixWeights parses "st=40,khop=25,..." into per-template weights.
func mixWeights(spec string) (map[string]int, error) {
	w := map[string]int{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		ok := false
		for _, k := range kinds {
			if kv[0] == k {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown mix kind %q (want one of %s)", kv[0], strings.Join(kinds, ", "))
		}
		w[kv[0]] = n
	}
	total := 0
	for _, n := range w {
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return w, nil
}

// sampler draws templates by weight and vertices uniformly, one per
// worker so the draw stream is deterministic under -seed.
type sampler struct {
	r       *rng.Xoshiro256
	order   []string
	cum     []uint64
	total   uint64
	n       int32
	kmax    int32
	validat bool
	graphs  []string
}

func newSampler(seed uint64, weights map[string]int, n, kmax int32, validate bool) *sampler {
	s := &sampler{r: rng.NewXoshiro256(seed), n: n, kmax: kmax, validat: validate}
	for _, k := range kinds {
		if w := weights[k]; w > 0 {
			s.order = append(s.order, k)
			s.total += uint64(w)
			s.cum = append(s.cum, s.total)
		}
	}
	return s
}

// next builds one query URL suffix and returns its template kind.
func (s *sampler) next() (kind, query string) {
	x := s.r.Uint64n(s.total)
	kind = s.order[sort.Search(len(s.cum), func(i int) bool { return x < s.cum[i] })]
	src := int32(s.r.Uint64n(uint64(s.n)))
	v := ""
	if s.validat {
		v = "&validate=1"
	}
	if len(s.graphs) > 0 {
		// Uniform draw across the named graphs: every tenant sees load,
		// so per-graph fair-share shedding has something to arbitrate.
		v += "&graph=" + s.graphs[s.r.Uint64n(uint64(len(s.graphs)))]
	}
	switch kind {
	case "st":
		dst := int32(s.r.Uint64n(uint64(s.n)))
		return kind, fmt.Sprintf("src=%d&dst=%d%s", src, dst, v)
	case "khop":
		k := 1 + s.r.Uint64n(uint64(s.kmax))
		return kind, fmt.Sprintf("src=%d&k=%d%s", src, k, v)
	case "full":
		return kind, fmt.Sprintf("src=%d%s", src, v)
	case "components":
		return kind, "kind=components" + v
	default: // ecc
		return kind, fmt.Sprintf("kind=ecc&src=%d%s", src, v)
	}
}

// Response classes: sheds are the daemon's deliberate backpressure and
// must never be lumped in with hard failures.
const (
	classAdmitted = iota // 200: the query ran
	classShed            // 429: admission controller said later
	classError           // anything else: a real failure
)

// classify buckets one HTTP status.
func classify(status int) int {
	switch {
	case status == http.StatusOK:
		return classAdmitted
	case status == http.StatusTooManyRequests:
		return classShed
	default:
		return classError
	}
}

// tally accumulates one worker's results; merged after the run so the
// hot path takes no locks.
type tally struct {
	count     map[string]int64
	errors    int64
	sheds     int64
	admitted  int64
	invalid   int64
	statuses  map[int]int64
	samples   map[string][]float64 // seconds, per kind, all responses
	okSamples []float64            // seconds, admitted (200) only
}

func newTally() *tally {
	return &tally{
		count:    map[string]int64{},
		statuses: map[int]int64{},
		samples:  map[string][]float64{},
	}
}

func (t *tally) merge(o *tally) {
	for k, v := range o.count {
		t.count[k] += v
	}
	for k, v := range o.statuses {
		t.statuses[k] += v
	}
	t.errors += o.errors
	t.sheds += o.sheds
	t.admitted += o.admitted
	t.invalid += o.invalid
	for k, v := range o.samples {
		t.samples[k] = append(t.samples[k], v...)
	}
	t.okSamples = append(t.okSamples, o.okSamples...)
}

// queryResp is the subset of bfsd's answer bfsload inspects.
type queryResp struct {
	Valid     *bool  `json:"valid"`
	Error     string `json:"error"`
	Truncated bool   `json:"truncated"`
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// kindStats is the per-template block of the JSON report (times in
// milliseconds).
type kindStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarize(samples []float64, count int64) kindStats {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	ks := kindStats{Count: count}
	if len(s) == 0 {
		return ks
	}
	ks.MeanMS = sum / float64(len(s)) * 1e3
	ks.P50MS = percentile(s, 0.50) * 1e3
	ks.P90MS = percentile(s, 0.90) * 1e3
	ks.P99MS = percentile(s, 0.99) * 1e3
	ks.MaxMS = s[len(s)-1] * 1e3
	return ks
}

type report struct {
	Addr        string               `json:"addr"`
	Vertices    int64                `json:"vertices"`
	Edges       int64                `json:"edges"`
	Desc        string               `json:"desc"`
	Graphs      []string             `json:"graphs,omitempty"`
	Duration    float64              `json:"duration_s"`
	Concurrency int                  `json:"concurrency"`
	RateTarget  float64              `json:"rate_target_qps"`
	Mix         string               `json:"mix"`
	Requests    int64                `json:"requests"`
	Admitted    int64                `json:"admitted"`
	Sheds       int64                `json:"sheds"`
	ShedRate    float64              `json:"shed_rate"`
	Errors      int64                `json:"errors"`
	Invalid     int64                `json:"validation_failures"`
	QPS         float64              `json:"qps"`
	GoodputQPS  float64              `json:"goodput_qps"`
	Overall     kindStats            `json:"overall"`
	AdmittedLat kindStats            `json:"admitted_latency"`
	PerKind     map[string]kindStats `json:"per_kind"`
	SLOP99MS    float64              `json:"slo_p99_ms,omitempty"`
	ShedBudget  float64              `json:"shed_budget,omitempty"`
	SLOOK       bool                 `json:"slo_ok"`
}

// loadConfig parameterizes one closed- or open-loop run.
type loadConfig struct {
	addr        string
	duration    time.Duration
	concurrency int
	rate        float64
	weights     map[string]int
	mix         string
	kmax        int
	validate    bool
	seed        uint64
	graphs      []string
	n           int32
	shedBackoff time.Duration
	client      *http.Client
	reg         *obs.Registry
}

// runLoad executes one load run and returns its merged tally plus the
// measured wall time.
func runLoad(cfg loadConfig) (*tally, float64) {
	latency := func(kind string) *obs.Histogram {
		return cfg.reg.Histogram("bfsload_latency_seconds",
			[]float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}, obs.L("kind", kind))
	}

	// Open loop: a token bucket fed at -rate; closed loop: nil channel,
	// workers free-run.
	var tokens chan struct{}
	stop := make(chan struct{})
	if cfg.rate > 0 {
		tokens = make(chan struct{}, cfg.concurrency)
		interval := time.Duration(float64(time.Second) / cfg.rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // target saturated; drop the arrival
					}
				case <-stop:
					return
				}
			}
		}()
	}

	tallies := make([]*tally, cfg.concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for w := 0; w < cfg.concurrency; w++ {
		tallies[w] = newTally()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newSampler(cfg.seed+uint64(w), cfg.weights, cfg.n, int32(cfg.kmax), cfg.validate)
			s.graphs = cfg.graphs
			ta := tallies[w]
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-stop:
						return
					}
				}
				kind, q := s.next()
				t0 := time.Now()
				status, body, rerr := get(cfg.client, cfg.addr+"/query?"+q)
				el := time.Since(t0).Seconds()
				ta.count[kind]++
				ta.samples[kind] = append(ta.samples[kind], el)
				latency(kind).Observe(el)
				if rerr != nil {
					ta.errors++
					continue
				}
				ta.statuses[status]++
				switch classify(status) {
				case classShed:
					ta.sheds++
					if cfg.shedBackoff > 0 {
						// A well-behaved client honors backpressure
						// instead of immediately re-arriving; without
						// this, a closed loop turns every shed into a
						// tight retry storm that steals CPU from the
						// admitted queries it is measuring.
						time.Sleep(cfg.shedBackoff)
					}
					continue
				case classError:
					ta.errors++
					continue
				}
				ta.admitted++
				ta.okSamples = append(ta.okSamples, el)
				if cfg.validate && (kind == "st" || kind == "khop" || kind == "full") {
					var qr queryResp
					if json.Unmarshal(body, &qr) != nil || qr.Valid == nil || !*qr.Valid {
						ta.invalid++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	elapsed := time.Since(start).Seconds()

	total := newTally()
	for _, ta := range tallies {
		total.merge(ta)
	}
	return total, elapsed
}

// buildReport turns one run's tally into the JSON report.
func buildReport(cfg loadConfig, ready *readyInfo, total *tally, elapsed float64) report {
	var requests int64
	var all []float64
	perKind := map[string]kindStats{}
	for _, k := range kinds {
		if c := total.count[k]; c > 0 {
			perKind[k] = summarize(total.samples[k], c)
			requests += c
			all = append(all, total.samples[k]...)
		}
	}
	rep := report{
		Addr:        cfg.addr,
		Vertices:    ready.Vertices,
		Edges:       ready.Edges,
		Desc:        ready.Desc,
		Graphs:      cfg.graphs,
		Duration:    elapsed,
		Concurrency: cfg.concurrency,
		RateTarget:  cfg.rate,
		Mix:         cfg.mix,
		Requests:    requests,
		Admitted:    total.admitted,
		Sheds:       total.sheds,
		Errors:      total.errors,
		Invalid:     total.invalid,
		QPS:         float64(requests) / elapsed,
		GoodputQPS:  float64(total.admitted-total.invalid) / elapsed,
		Overall:     summarize(all, requests),
		AdmittedLat: summarize(total.okSamples, total.admitted),
		PerKind:     perKind,
		SLOOK:       true,
	}
	if requests > 0 {
		rep.ShedRate = float64(total.sheds) / float64(requests)
	}
	return rep
}

// sweepLevel is one point of the -overload-sweep curve.
type sweepLevel struct {
	Concurrency   int     `json:"concurrency"`
	Requests      int64   `json:"requests"`
	Admitted      int64   `json:"admitted"`
	Sheds         int64   `json:"sheds"`
	ShedRate      float64 `json:"shed_rate"`
	Errors        int64   `json:"errors"`
	Invalid       int64   `json:"validation_failures"`
	QPS           float64 `json:"qps"`
	GoodputQPS    float64 `json:"goodput_qps"`
	P99MS         float64 `json:"p99_ms"`
	AdmittedP99MS float64 `json:"admitted_p99_ms"`
}

// sweepReport is the -overload-sweep JSON artifact.
type sweepReport struct {
	Addr           string       `json:"addr"`
	Mix            string       `json:"mix"`
	Graphs         []string     `json:"graphs,omitempty"`
	DurationS      float64      `json:"duration_per_level_s"`
	Levels         []sweepLevel `json:"levels"`
	PeakGoodputQPS float64      `json:"peak_goodput_qps"`
	Errors         int64        `json:"errors"`
	Invalid        int64        `json:"validation_failures"`
}

// parseLevels parses the -overload-sweep concurrency list.
func parseLevels(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad sweep level %q (want positive concurrency)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sweep %q", spec)
	}
	return out, nil
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8090", "bfsd base URL")
		duration    = flag.Duration("duration", 10*time.Second, "load duration (per level under -overload-sweep)")
		concurrency = flag.Int("concurrency", 8, "concurrent workers (closed loop) / max in flight (open loop)")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in QPS (0 = closed loop)")
		mix         = flag.String("mix", "st=40,khop=25,full=20,components=5,ecc=10", "query template weights")
		kmax        = flag.Int("kmax", 4, "max depth bound drawn for khop queries")
		validate    = flag.Bool("validate", false, "ask the daemon to self-validate bfs answers (&validate=1)")
		sloP99      = flag.Duration("slo-p99", 0, "fail (exit 1) if overall p99 exceeds this (0 = off)")
		shedBudget  = flag.Float64("shed-budget", -1, "fail (exit 1) if the shed fraction exceeds this (0..1; negative = off)")
		graphsFlag  = flag.String("graphs", "", "comma-separated named graphs to spread queries across (empty = the default graph)")
		sweep       = flag.String("overload-sweep", "", "comma-separated concurrency levels: run the closed loop at each and emit a goodput/p99 curve")
		shedBackoff = flag.Duration("shed-backoff", 0, "sleep this long after a 429 before the worker's next arrival (0 = immediate retry storm)")
		jsonOut     = flag.String("json", "", "write the JSON report here ('-' = stdout)")
		seed        = flag.Uint64("seed", 1, "base RNG seed (worker i uses seed+i)")
	)
	flag.Parse()

	weights, err := mixWeights(*mix)
	if err != nil {
		fatal(err)
	}
	var graphs []string
	for _, g := range strings.Split(*graphsFlag, ",") {
		if g = strings.TrimSpace(g); g != "" {
			graphs = append(graphs, g)
		}
	}
	ready, err := probeReady(*addr, graphs)
	if err != nil {
		fatal(fmt.Errorf("target not ready: %w", err))
	}
	n := int32(ready.Vertices)
	if n <= 0 {
		fatal(fmt.Errorf("target reports %d vertices", ready.Vertices))
	}

	maxConc := *concurrency
	var levels []int
	if *sweep != "" {
		if levels, err = parseLevels(*sweep); err != nil {
			fatal(err)
		}
		for _, l := range levels {
			if l > maxConc {
				maxConc = l
			}
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConc * 2,
		MaxIdleConnsPerHost: maxConc * 2,
	}}
	cfg := loadConfig{
		addr:        *addr,
		duration:    *duration,
		concurrency: *concurrency,
		rate:        *rate,
		weights:     weights,
		mix:         *mix,
		kmax:        *kmax,
		validate:    *validate,
		seed:        *seed,
		graphs:      graphs,
		n:           n,
		shedBackoff: *shedBackoff,
		client:      client,
		reg:         obs.New(),
	}

	if levels != nil {
		runSweep(cfg, levels, *jsonOut)
		return
	}

	total, elapsed := runLoad(cfg)
	rep := buildReport(cfg, ready, total, elapsed)
	if *sloP99 > 0 {
		rep.SLOP99MS = sloP99.Seconds() * 1e3
		if rep.Overall.P99MS > rep.SLOP99MS {
			rep.SLOOK = false
		}
	}
	if *shedBudget >= 0 {
		rep.ShedBudget = *shedBudget
		if rep.ShedRate > *shedBudget {
			rep.SLOOK = false
		}
	}
	if total.invalid > 0 {
		rep.SLOOK = false
	}

	fmt.Printf("bfsload: %d requests in %.1fs = %.0f qps, goodput %.0f qps (%d admitted, %d sheds, %d errors, %d validation failures)\n",
		rep.Requests, elapsed, rep.QPS, rep.GoodputQPS, rep.Admitted, rep.Sheds, rep.Errors, rep.Invalid)
	fmt.Printf("  overall:  p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.Overall.P50MS, rep.Overall.P90MS, rep.Overall.P99MS, rep.Overall.MaxMS)
	if rep.Admitted > 0 {
		fmt.Printf("  admitted: p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
			rep.AdmittedLat.P50MS, rep.AdmittedLat.P90MS, rep.AdmittedLat.P99MS, rep.AdmittedLat.MaxMS)
	}
	for _, k := range kinds {
		if ks, ok := rep.PerKind[k]; ok {
			fmt.Printf("  %-11s %7d  p50 %8.2fms  p99 %8.2fms\n", k, ks.Count, ks.P50MS, ks.P99MS)
		}
	}
	if !rep.SLOOK {
		fmt.Printf("  SLO VIOLATED (p99 budget %.0fms, shed budget %.2f vs rate %.2f, validation failures %d)\n",
			rep.SLOP99MS, rep.ShedBudget, rep.ShedRate, rep.Invalid)
	}

	if *jsonOut != "" {
		writeJSONOut(*jsonOut, rep)
	}
	if !rep.SLOOK {
		os.Exit(1)
	}
}

// runSweep executes the closed loop once per concurrency level and
// emits the goodput/p99 curve. Exit is 1 only on hard errors or
// validation failures — shedding under overload is the expected
// behavior the curve exists to show.
func runSweep(cfg loadConfig, levels []int, jsonOut string) {
	sr := sweepReport{Addr: cfg.addr, Mix: cfg.mix, Graphs: cfg.graphs, DurationS: cfg.duration.Seconds()}
	fmt.Printf("bfsload: overload sweep, %.1fs per level\n", cfg.duration.Seconds())
	for i, conc := range levels {
		lc := cfg
		lc.concurrency = conc
		lc.rate = 0 // the sweep is a closed loop by construction
		lc.seed = cfg.seed + uint64(i)*1000
		total, elapsed := runLoad(lc)
		var all []float64
		var requests int64
		for _, k := range kinds {
			requests += total.count[k]
			all = append(all, total.samples[k]...)
		}
		overall := summarize(all, requests)
		admitted := summarize(total.okSamples, total.admitted)
		lv := sweepLevel{
			Concurrency:   conc,
			Requests:      requests,
			Admitted:      total.admitted,
			Sheds:         total.sheds,
			Errors:        total.errors,
			Invalid:       total.invalid,
			QPS:           float64(requests) / elapsed,
			GoodputQPS:    float64(total.admitted-total.invalid) / elapsed,
			P99MS:         overall.P99MS,
			AdmittedP99MS: admitted.P99MS,
		}
		if requests > 0 {
			lv.ShedRate = float64(total.sheds) / float64(requests)
		}
		sr.Levels = append(sr.Levels, lv)
		sr.Errors += total.errors
		sr.Invalid += total.invalid
		if lv.GoodputQPS > sr.PeakGoodputQPS {
			sr.PeakGoodputQPS = lv.GoodputQPS
		}
		fmt.Printf("  c=%-4d  %6.0f qps  goodput %6.0f qps  shed %5.1f%%  p99 %8.2fms  admitted p99 %8.2fms  (%d errors)\n",
			conc, lv.QPS, lv.GoodputQPS, lv.ShedRate*100, lv.P99MS, lv.AdmittedP99MS, total.errors)
	}
	if jsonOut != "" {
		writeJSONOut(jsonOut, sr)
	}
	if sr.Errors > 0 || sr.Invalid > 0 {
		os.Exit(1)
	}
}

func writeJSONOut(path string, v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(path, out, 0o644); err != nil {
		fatal(err)
	}
}

// readyInfo is bfsd's /readyz payload.
type readyInfo struct {
	Ready    bool   `json:"ready"`
	Vertices int64  `json:"vertices"`
	Edges    int64  `json:"edges"`
	Desc     string `json:"desc"`
}

// probeReady checks the target is serving. With named graphs, every
// graph is probed via /readyz?graph= and the smallest vertex count
// sizes the source draws (so every query is in range on every graph).
func probeReady(addr string, graphs []string) (*readyInfo, error) {
	if len(graphs) == 0 {
		return probeOne(addr + "/readyz")
	}
	agg := &readyInfo{Ready: true}
	for i, g := range graphs {
		ri, err := probeOne(addr + "/readyz?graph=" + g)
		if err != nil {
			return nil, fmt.Errorf("graph %q: %w", g, err)
		}
		if i == 0 || ri.Vertices < agg.Vertices {
			agg.Vertices = ri.Vertices
		}
		agg.Edges += ri.Edges
	}
	agg.Desc = fmt.Sprintf("%d graphs: %s", len(graphs), strings.Join(graphs, ","))
	return agg, nil
}

func probeOne(url string) (*readyInfo, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var ri struct {
		readyInfo
		ErrorMsg string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK || !ri.Ready {
		return nil, fmt.Errorf("%s: status %d ready=%v %s", url, resp.StatusCode, ri.Ready, ri.ErrorMsg)
	}
	return &ri.readyInfo, nil
}

func get(client *http.Client, url string) (status int, body []byte, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bfsload: %v\n", err)
	os.Exit(1)
}
