package main

import (
	"net/http"
	"sort"
	"strings"
	"testing"
)

// Sheds (429) must be classified as deliberate backpressure, never as
// hard errors; only 200 counts as admitted.
func TestClassify(t *testing.T) {
	cases := map[int]int{
		http.StatusOK:                  classAdmitted,
		http.StatusTooManyRequests:     classShed,
		http.StatusServiceUnavailable:  classError,
		http.StatusNotFound:            classError,
		http.StatusBadRequest:          classError,
		http.StatusGatewayTimeout:      classError,
		http.StatusInternalServerError: classError,
	}
	for status, want := range cases {
		if got := classify(status); got != want {
			t.Errorf("classify(%d) = %d, want %d", status, got, want)
		}
	}
}

func TestParseLevels(t *testing.T) {
	levels, err := parseLevels("2, 4,8,64")
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 || levels[0] != 2 || levels[3] != 64 {
		t.Fatalf("levels: %v", levels)
	}
	for _, bad := range []string{"", "0", "-1", "x", "4,x"} {
		if _, err := parseLevels(bad); err == nil {
			t.Fatalf("sweep %q accepted", bad)
		}
	}
}

// With -graphs, every query targets one of the named graphs and all
// names are eventually drawn.
func TestSamplerTargetsNamedGraphs(t *testing.T) {
	s := newSampler(3, map[string]int{"st": 1, "components": 1}, 50, 4, false)
	s.graphs = []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		_, q := s.next()
		hit := ""
		for _, g := range s.graphs {
			if strings.Contains(q, "graph="+g) {
				hit = g
				break
			}
		}
		if hit == "" {
			t.Fatalf("query %q targets no named graph", q)
		}
		seen[hit] = true
	}
	if len(seen) != 3 {
		t.Fatalf("graphs drawn: %v, want all of a,b,c", seen)
	}
}

func TestMixWeights(t *testing.T) {
	w, err := mixWeights("st=40,khop=25,full=20,components=5,ecc=10")
	if err != nil {
		t.Fatal(err)
	}
	if w["st"] != 40 || w["ecc"] != 10 {
		t.Fatalf("weights: %v", w)
	}
	for _, bad := range []string{"", "st", "st=x", "st=-1", "pagerank=10", "st=0,khop=0"} {
		if _, err := mixWeights(bad); err == nil {
			t.Fatalf("mix %q accepted", bad)
		}
	}
}

// The sampler must honor the weights (roughly) and emit well-formed
// query strings whose vertices are in range.
func TestSamplerDrawsMix(t *testing.T) {
	w := map[string]int{"st": 50, "khop": 25, "full": 25}
	s := newSampler(7, w, 100, 4, true)
	counts := map[string]int{}
	const draws = 4000
	for i := 0; i < draws; i++ {
		kind, q := s.next()
		counts[kind]++
		if q == "" {
			t.Fatal("empty query")
		}
	}
	if counts["components"] != 0 || counts["ecc"] != 0 {
		t.Fatalf("zero-weight kinds drawn: %v", counts)
	}
	if counts["st"] < draws/3 {
		t.Fatalf("st drawn %d of %d, want ~half", counts["st"], draws)
	}
	if counts["khop"] == 0 || counts["full"] == 0 {
		t.Fatalf("weighted kinds never drawn: %v", counts)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i+1) / 1000 // 1ms..100ms
	}
	// Shuffle deterministically; summarize must sort.
	sort.Slice(samples, func(i, j int) bool { return (i*37)%100 < (j*37)%100 })
	ks := summarize(samples, 100)
	if ks.P50MS < 49 || ks.P50MS > 52 {
		t.Fatalf("p50 = %v, want ~50ms", ks.P50MS)
	}
	if ks.P99MS < 98 || ks.P99MS > 100 {
		t.Fatalf("p99 = %v, want ~99ms", ks.P99MS)
	}
	if ks.MaxMS != 100 {
		t.Fatalf("max = %v, want 100ms", ks.MaxMS)
	}
}
