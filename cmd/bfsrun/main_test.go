package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/mmio"
)

func TestRunOnSuiteGraph(t *testing.T) {
	if err := run("BFS_WSL", "", "kkt-power", 4096, -1, 2, 4, 1, true, "Lonestar", false, false, "", "", 1, false, -1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunFixedSource(t *testing.T) {
	if err := run("BFS_CL", "", "cage14", 4096, 0, 1, 2, 1, true, "Trestles", false, false, "", "", 1, false, -1, 0); err != nil {
		t.Fatal(err)
	}
}

// -shards routes through the sharded backend; the run self-validates
// against serial BFS, so a pass means the exchange produced a correct
// tree end to end from the CLI.
func TestRunSharded(t *testing.T) {
	if err := run("BFS_WSL", "", "kkt-power", 4096, -1, 2, 4, 1, true, "Lonestar", false, false, "", "", 2, false, -1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnGraphFiles(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.ErdosRenyi(200, 1200, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(dir, "g.bin")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("sbfs", binPath, "", 1, 0, 1, 1, 1, true, "Lonestar", true, false, "", "", 1, false, -1, 0); err != nil {
		t.Fatal(err)
	}

	mtxPath := filepath.Join(dir, "g.mtx")
	f, err = os.Create(mtxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteMatrixMarket(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("Baseline1(bag)", mtxPath, "", 1, 0, 1, 2, 1, true, "Lonestar", false, false, "", "", 1, false, -1, 0); err != nil {
		t.Fatal(err)
	}

	edgePath := filepath.Join(dir, "g.edges")
	f, err = os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("BFS_EL", edgePath, "", 1, 0, 1, 2, 1, true, "Local", true, true, "", "", 1, false, -1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithReorder exercises -reorder end-to-end: the engine relabels
// internally, and the -validate comparison (against serial BFS on the
// ORIGINAL graph) must still pass because results are mapped back.
func TestRunWithReorder(t *testing.T) {
	for _, mode := range []string{"degree", "bfs"} {
		if err := run("BFS_WSL", "", "kkt-power", 4096, -1, 2, 4, 1, true, "Lonestar", false, false, "", mode, 1, false, -1, 0); err != nil {
			t.Fatalf("reorder %q: %v", mode, err)
		}
	}
	if err := run("BFS_WSL", "", "kkt-power", 4096, 0, 1, 2, 1, false, "Lonestar", false, false, "", "hilbert", 1, false, -1, 0); err == nil {
		t.Fatal("accepted unknown reorder mode")
	}
}

// TestRunGoalDirected: -dst and -k terminate early and self-validate
// against the oracle's closed levels; the non-core runtimes refuse the
// flags instead of silently running to exhaustion.
func TestRunGoalDirected(t *testing.T) {
	if err := run("BFS_WSL", "", "kkt-power", 4096, 0, 1, 4, 1, true, "Lonestar", false, false, "", "", 1, false, 50, 0); err != nil {
		t.Fatalf("-dst: %v", err)
	}
	if err := run("BFS_CL", "", "kkt-power", 4096, 0, 1, 4, 1, true, "Lonestar", false, false, "", "", 1, false, -1, 3); err != nil {
		t.Fatalf("-k: %v", err)
	}
	if err := run("BFS_WSL", "", "kkt-power", 4096, 0, 1, 4, 1, true, "Lonestar", false, false, "", "", 2, false, 50, 2); err != nil {
		t.Fatalf("sharded -dst -k: %v", err)
	}
	if err := run("BFS_WSL", "", "kkt-power", 4096, 0, 1, 4, 1, true, "Lonestar", false, false, "", "degree", 1, false, 50, 0); err != nil {
		t.Fatalf("reorder -dst (target must be translated): %v", err)
	}
	if err := run("Baseline1(bag)", "", "kkt-power", 4096, 0, 1, 2, 1, false, "Lonestar", false, false, "", "", 1, false, 5, 0); err == nil {
		t.Fatal("baseline accepted -dst")
	}
	if err := run("BFS_WSL", "", "kkt-power", 4096, 0, 1, 2, 1, false, "Lonestar", false, false, "", "", 1, false, 1<<30, 0); err == nil {
		t.Fatal("accepted out-of-range -dst")
	}
	if err := run("BFS_WSL", "", "kkt-power", 4096, 0, 1, 2, 1, false, "Lonestar", false, false, "", "", 1, false, -1, -2); err == nil {
		t.Fatal("accepted negative -k")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("BFS_XXL", "", "cage14", 4096, 0, 1, 1, 1, false, "Lonestar", false, false, "", "", 1, false, -1, 0); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if err := run("sbfs", "", "", 1, 0, 1, 1, 1, false, "Lonestar", false, false, "", "", 1, false, -1, 0); err == nil {
		t.Fatal("accepted missing graph")
	}
	if err := run("sbfs", "/does/not/exist.bin", "", 1, 0, 1, 1, 1, false, "Lonestar", false, false, "", "", 1, false, -1, 0); err == nil {
		t.Fatal("accepted missing file")
	}
	if err := run("sbfs", "", "cage14", 4096, 0, 1, 1, 1, false, "Cray", false, false, "", "", 1, false, -1, 0); err == nil {
		t.Fatal("accepted unknown machine")
	}
}

// TestRunWritesTrace checks -trace produces a loadable trace_event
// file, and that the serial baseline (which records no dispatch
// events) is refused instead of silently writing an empty trace.
func TestRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := run("BFS_WSL", "", "cage14", 4096, 0, 1, 4, 1, true, "Lonestar", false, false, path, "", 1, false, -1, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if err := run("sbfs", "", "cage14", 4096, 0, 1, 1, 1, false, "Lonestar", false, false, filepath.Join(dir, "t2.json"), "", 1, false, -1, 0); err == nil {
		t.Fatal("-trace with the serial baseline should be refused")
	}
}
