// Command bfsrun executes one BFS algorithm on a graph file (or a
// generated graph) and prints timing, work, and steal statistics.
//
// Usage:
//
//	bfsrun -algo BFS_WSL -graph wiki.bin -src 0 -workers 8
//	bfsrun -algo BFS_CL -suite wikipedia -scale 128 -sources 16
//	bfsrun -algo Baseline1(bag) -suite cage14 -validate
//	bfsrun -algo BFS_WSL -suite wikipedia -trace run.json   # Perfetto trace
//	bfsrun -algo BFS_WSL -suite wikipedia -src 0 -dst 4711  # s–t: stop at dst's level
//	bfsrun -algo BFS_CL -suite cage14 -src 0 -k 4           # 4-hop neighborhood
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/graph"
	"optibfs/internal/harness"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
	"optibfs/internal/stats"
)

func main() {
	var (
		algoName  = flag.String("algo", "BFS_WSL", "algorithm (see bfsbench tables for names)")
		graphPath = flag.String("graph", "", "graph file (.bin, .mtx, or edge list by extension)")
		suite     = flag.String("suite", "", "generate a Table IV stand-in instead of loading a file")
		scale     = flag.Int("scale", 64, "size divisor for -suite")
		src       = flag.Int("src", -1, "source vertex (-1 = random non-isolated)")
		sources   = flag.Int("sources", 1, "number of sources to run (random when -src=-1)")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		seed      = flag.Uint64("seed", 1, "run seed")
		validate  = flag.Bool("validate", true, "validate distances against serial BFS")
		machine   = flag.String("machine", "Lonestar", "cost-model machine: Lonestar|Trestles|Local")
		profile   = flag.Bool("profile", false, "print the per-level frontier histogram of the last source")
		balance   = flag.Bool("balance", false, "print per-worker load balance of the last source")
		trace     = flag.String("trace", "", "write the last source's dispatch trace as Chrome trace_event JSON (load in Perfetto)")
		reorderM  = flag.String("reorder", "", "vertex relabeling: degree|bfs (results stay in original ids)")
		shards    = flag.Int("shards", 1, "CSR shards for the core family (>1 = owner-compute sharded engines)")
		hybrid    = flag.Bool("hybrid", false, "direction-optimizing mode: bottom-up levels on large frontiers (core parallel family)")
		dst       = flag.Int("dst", -1, "goal vertex: terminate at the level barrier that settles it (core family)")
		maxDepth  = flag.Int("k", 0, "depth bound: explore k closed levels then stop (core family, 0 = unbounded)")
	)
	flag.Parse()
	if err := run(*algoName, *graphPath, *suite, *scale, *src, *sources, *workers, *seed, *validate, *machine, *profile, *balance, *trace, *reorderM, *shards, *hybrid, *dst, *maxDepth); err != nil {
		fmt.Fprintln(os.Stderr, "bfsrun:", err)
		os.Exit(1)
	}
}

func loadGraph(path, suite string, scale int) (*graph.CSR, error) {
	if suite != "" {
		spec, err := harness.SpecByName(suite)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale)
	}
	if path == "" {
		return nil, fmt.Errorf("need -graph or -suite")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case hasSuffix(path, ".bin") || hasSuffix(path, ".bin2"):
		// v2 files mmap zero-copy; the mapping lives until process exit.
		m, err := mmio.LoadMapped(path, mmio.MapOptions{})
		if err != nil {
			return nil, err
		}
		return m.Graph(), nil
	case hasSuffix(path, ".mtx"):
		return mmio.ReadMatrixMarket(f)
	default:
		return mmio.ReadEdgeList(f)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// writeTrace exports one run's dispatch trace as Chrome trace_event
// JSON. Serial runs record no dispatch events; say so instead of
// writing an empty file.
func writeTrace(path, algoName string, src int32, res *core.Result) error {
	if res.Events == nil {
		return fmt.Errorf("-trace: %s records no dispatch events (serial baseline?)", algoName)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, obs.TraceMeta{Algo: algoName, Source: src}, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(algoName, graphPath, suite string, scale, src, sources, workers int, seed uint64, validate bool, machineName string, profile, balance bool, trace, reorderMode string, shards int, hybrid bool, dst, maxDepth int) error {
	algo, err := harness.AlgoByName(algoName)
	if err != nil {
		return err
	}
	goal := core.Goal{MaxDepth: int32(maxDepth)}
	if dst >= 0 {
		goal.Target = int32(dst) + 1
	}
	if goal.Bounded() && !algo.SupportsGoals() {
		return fmt.Errorf("-dst/-k need the core family; %s runs to exhaustion", algoName)
	}
	if maxDepth < 0 {
		return fmt.Errorf("-k %d: want a non-negative depth bound", maxDepth)
	}
	var machine costmodel.Machine
	switch machineName {
	case "Lonestar":
		machine = costmodel.Lonestar
	case "Trestles":
		machine = costmodel.Trestles
	case "Local":
		// Calibrate the cost constants on this host (microbenchmarks,
		// a few tens of ms) so modeled times describe this machine.
		machine = costmodel.Calibrate(0)
	default:
		return fmt.Errorf("unknown machine %q (Lonestar|Trestles|Local)", machineName)
	}
	g, err := loadGraph(graphPath, suite, scale)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d avg-deg=%.1f\n", g.NumVertices(), g.NumEdges(), g.AvgDegree())
	if dst >= 0 && int32(dst) >= g.NumVertices() {
		return fmt.Errorf("-dst %d not in [0, %d)", dst, g.NumVertices())
	}
	if goal.Bounded() {
		fmt.Printf("goal: target=%d depth-bound=%d (terminate at the closing level barrier)\n", dst, maxDepth)
	}

	var srcs []int32
	if src >= 0 {
		srcs = []int32{int32(src)}
	} else {
		srcs = harness.PickSources(g, sources, seed)
	}
	opt := core.Options{Workers: workers, Seed: seed, Reorder: core.ReorderMode(reorderMode), Shards: shards, Hybrid: hybrid,
		Target: goal.Target, MaxDepth: goal.MaxDepth}
	if opt.Reorder != core.ReorderNone {
		// The engine relabels internally and maps results back, so the
		// -validate comparison below stays in original vertex ids.
		fmt.Printf("reorder: %s (results mapped back to original ids)\n", opt.Reorder)
	}
	if shards > 1 {
		fmt.Printf("shards: %d (owner-compute, cross-shard frontier exchange)\n", shards)
	}
	if trace != "" {
		// Event buffers sized generously: dispatch events are rare
		// relative to edges, and the exporter flags any overflow.
		opt.TraceCapacity = 1 << 16
		opt.LevelTimeline = true
	}
	// All sources run through one pooled runner; results are read (and
	// aggregated) before the next source reuses the arrays.
	runner, err := algo.NewRunner(g, opt)
	if err != nil {
		return err
	}
	defer runner.Close()
	var agg stats.Counters
	var measured, modeled float64
	var lastLevels []int64
	var lastPerWorker []stats.PaddedCounters
	var lastRes *core.Result
	var lastSrc int32
	for _, s := range srcs {
		start := time.Now()
		res, err := runner.Run(s)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if validate {
			if err := validateRun(g, s, goal, res); err != nil {
				return fmt.Errorf("validation failed from source %d: %w", s, err)
			}
		}
		model := costmodel.Modeled(machine, algo.Shape(), res)
		measured += elapsed.Seconds()
		modeled += model
		agg.Add(&res.Counters)
		mark := ""
		if res.Truncated {
			mark = " truncated"
			if dst >= 0 {
				mark = fmt.Sprintf(" truncated dist(%d)=%d", dst, res.Dist[dst])
			}
		}
		fmt.Printf("src=%-8d levels=%-4d reached=%-9d dup=%-7d measured=%8.3fms modeled(%s)=%8.3fms%s\n",
			s, res.Levels, res.Reached, res.Duplicates(), elapsed.Seconds()*1e3, machine.Name, model*1e3, mark)
		lastLevels = res.LevelSizes
		lastPerWorker = res.PerWorker
		lastRes, lastSrc = res, s
	}
	if trace != "" && lastRes != nil {
		if err := writeTrace(trace, algoName, lastSrc, lastRes); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (open in Perfetto or chrome://tracing)\n", trace)
	}
	if balance && len(lastPerWorker) > 0 {
		var total, max int64
		for i := range lastPerWorker {
			e := lastPerWorker[i].EdgesScanned
			total += e
			if e > max {
				max = e
			}
		}
		fmt.Println("\nper-worker load (edges scanned, last source):")
		for i := range lastPerWorker {
			e := lastPerWorker[i].EdgesScanned
			bar := 0
			if max > 0 {
				bar = int(e * 40 / max)
			}
			fmt.Printf("  worker %2d %10d %s\n", i, e, strings.Repeat("#", bar))
		}
		if total > 0 && len(lastPerWorker) > 0 {
			avg := float64(total) / float64(len(lastPerWorker))
			fmt.Printf("  imbalance (max/avg): %.2f\n", float64(max)/avg)
		}
	}
	if profile && len(lastLevels) > 0 {
		var peak int64 = 1
		for _, sz := range lastLevels {
			if sz > peak {
				peak = sz
			}
		}
		fmt.Println("\nfrontier profile (last source):")
		for d, sz := range lastLevels {
			bar := int(sz * 50 / peak)
			fmt.Printf("  level %3d %9d %s\n", d, sz, strings.Repeat("#", bar))
		}
	}
	k := float64(len(srcs))
	fmt.Printf("\nmean over %d sources: measured=%.3fms modeled=%.3fms\n", len(srcs), measured/k*1e3, modeled/k*1e3)
	fmt.Printf("work: pops=%d edges=%d discovered=%d\n", agg.VerticesPopped, agg.EdgesScanned, agg.Discovered)
	fmt.Printf("dispatch: fetches=%d retries=%d locks=%d trylock-fails=%d atomic-rmw=%d\n",
		agg.Fetches, agg.FetchRetries, agg.LockAcquisitions, agg.LockTryFails, agg.AtomicRMW)
	if agg.StealAttempts > 0 {
		fmt.Printf("steals: attempts=%d ok=%d victim-locked=%d victim-idle=%d too-small=%d stale=%d invalid=%d\n",
			agg.StealAttempts, agg.StealSuccess, agg.StealVictimLocked, agg.StealVictimIdle,
			agg.StealTooSmall, agg.StealStale, agg.StealInvalid)
	}
	if validate {
		if goal.Bounded() {
			fmt.Println("validation: OK (closed levels exact against serial BFS)")
		} else {
			fmt.Println("validation: OK (distances match serial BFS)")
		}
	}
	return nil
}

// validateRun diffs one result against the serial oracle. Unbounded
// runs must match everywhere; goal-truncated runs are exact over their
// closed levels (every oracle distance <= res.Levels settled exactly,
// everything deeper Unreached) — the same contract the chaos auditor
// enforces.
func validateRun(g *graph.CSR, src int32, goal core.Goal, res *core.Result) error {
	want := graph.ReferenceBFS(g, src)
	if !goal.Bounded() {
		return graph.EqualDistances(res.Dist, want)
	}
	for v, d := range want {
		if d != graph.Unreached && d <= res.Levels {
			if res.Dist[v] != d {
				return fmt.Errorf("dist[%d] = %d, oracle says %d at closed level", v, res.Dist[v], d)
			}
		} else if res.Dist[v] != graph.Unreached {
			return fmt.Errorf("dist[%d] = %d, want Unreached past level %d", v, res.Dist[v], res.Levels)
		}
	}
	return nil
}
