package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optibfs/internal/chaos"
	"optibfs/internal/core"
)

func TestListProfiles(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(&buf, 0, 0, 0, 0, 0, "all", "all", "", "", true, false, false, false, nil)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v", code, err)
	}
	for _, p := range chaos.Profiles() {
		if !strings.Contains(buf.String(), p.Name) {
			t.Fatalf("-list output missing %q:\n%s", p.Name, buf.String())
		}
	}
}

func TestSelectorErrors(t *testing.T) {
	if _, err := run(os.Stdout, 0, 1, 4, 0, 0, "no-such-profile", "all", "", "", false, false, false, false, nil); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := run(os.Stdout, 0, 1, 4, 0, 0, "all", "BFS_NOPE", "", "", false, false, false, false, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := run(os.Stdout, 0, 1, 4, 0, 0, "all", "all", "", "no-such-artifact.json", false, false, false, false, nil); err == nil {
		t.Fatal("missing replay artifact accepted")
	}
}

func TestSelectors(t *testing.T) {
	ps, err := selectProfiles("steal-storm, mixed")
	if err != nil || len(ps) != 2 || ps[0].Name != "steal-storm" || ps[1].Name != "mixed" {
		t.Fatalf("selectProfiles = %v, %v", ps, err)
	}
	as, err := selectAlgos("BFS_WL,BFS_WSL")
	if err != nil || len(as) != 2 || as[0] != core.BFSWL || as[1] != core.BFSWSL {
		t.Fatalf("selectAlgos = %v, %v", as, err)
	}
	if ps, err := selectProfiles("all"); err != nil || ps != nil {
		t.Fatalf("selectProfiles(all) = %v, %v", ps, err)
	}
}

// TestSmokeSweep is the CI smoke in miniature: a narrow sweep must
// exit 0 and print the summary line.
func TestSmokeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke skipped in -short")
	}
	var buf bytes.Buffer
	code, err := run(&buf, 0, 1, 4, 0, 0, "steal-storm", "BFS_WL,BFS_WSL", "", "", false, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "0 failures") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}
	buf.Reset()
	code, err = run(&buf, 0, 1, 4, 0, 0, "steal-storm", "BFS_WL,BFS_WSL", "", "", false, true, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("engines sweep exit %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "shared engines") {
		t.Fatalf("engines summary missing:\n%s", buf.String())
	}
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	prof, err := chaos.ProfileByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	path, err := chaos.WriteRepro(dir, chaos.Repro{
		Graph:         chaos.GraphSpec{Kind: "star", N: 256, Seed: 2},
		Algorithm:     core.BFSWL,
		Options:       chaos.RunOptions{Workers: 4, Seed: 11},
		Profile:       prof,
		InjectionSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Ext(path) != ".json" {
		t.Fatalf("artifact %q not JSON-named", path)
	}
	var buf bytes.Buffer
	code, err := run(&buf, 0, 1, 4, 0, 0, "all", "all", "", path, false, false, false, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("replay of a correct run exited %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "replayed BFS_WL") {
		t.Fatalf("replay summary missing:\n%s", buf.String())
	}
}
