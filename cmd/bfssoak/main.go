// Command bfssoak runs the chaos-scheduler differential soak harness:
// it sweeps the BFS variants across graphs, perturbation profiles, and
// seeds, injecting delays at the optimistic protocols' racy points and
// auditing every run against the serial oracle and the protocol
// invariants. A failed run emits a minimal JSON repro artifact that
// -replay re-executes.
//
// Usage:
//
//	bfssoak                               # one full sweep, default suite
//	bfssoak -duration 30s                 # time-boxed smoke (CI profile)
//	bfssoak -profiles steal-storm,mixed -algos BFS_WL,BFS_WSL
//	bfssoak -replay soak-artifacts/repro-BFS_WL-steal-storm-….json
//	bfssoak -list                         # list perturbation profiles
//
// Exit status is 1 when any run broke an invariant (or a replayed
// artifact reproduced one), 2 for usage/harness errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"optibfs/internal/chaos"
	"optibfs/internal/core"
	"optibfs/internal/obs"
)

func main() {
	var (
		duration    = flag.Duration("duration", 0, "stop sweeping after this long (0 = exactly one sweep)")
		seeds       = flag.Int("seeds", 2, "derived option/seed sets per (graph, algorithm, profile) cell")
		workers     = flag.Int("workers", 0, "max workers per run (default: 2×GOMAXPROCS, clamped to [4,16])")
		seed        = flag.Uint64("seed", 0, "base seed for the sweep (0 = default)")
		profiles    = flag.String("profiles", "all", "comma-separated perturbation profiles (see -list)")
		algos       = flag.String("algos", "all", "comma-separated algorithms (e.g. BFS_WL,BFS_WSL)")
		artifacts   = flag.String("artifacts", "soak-artifacts", "directory for JSON repro artifacts (empty = don't write)")
		replay      = flag.String("replay", "", "re-execute one repro artifact instead of sweeping")
		list        = flag.Bool("list", false, "list perturbation profiles and exit")
		engines     = flag.Bool("engines", false, "reuse one engine per (graph, algorithm) so the audit covers state-reuse bugs")
		verbose     = flag.Bool("v", false, "log every run, not just failures")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metrics, /debug/vars, /debug/pprof on this address while sweeping (empty = off)")
		shards      = flag.Int("shards", 0, "pin the CSR shard count for every run (0 = each run draws from {1,2,4})")
		hybrid      = flag.Bool("hybrid", false, "pin direction-optimizing mode on for every run (default: each run draws it 1-in-4; serial cells always drop it)")
		registry    = flag.Bool("registry", false, "run the serve.Registry lifecycle soak (load/evict/query/swap/close interleavings) instead of the engine sweep")
		regRounds   = flag.Int("registry-rounds", 12, "registry soak rounds (every third round closes mid-flight)")
		regWorkers  = flag.Int("registry-workers", 8, "registry soak concurrent clients per round")
		regOps      = flag.Int("registry-ops", 16, "registry soak operations per client per round")
		regGraphs   = flag.Int("registry-graphs", 4, "registry soak named-graph population per round")
	)
	flag.Parse()
	if *registry {
		code, err := runRegistry(os.Stdout, *regRounds, *regWorkers, *regOps, *regGraphs, *seed, *profiles, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfssoak:", err)
			code = 2
		}
		os.Exit(code)
	}
	var reg *obs.Registry
	var srv *obs.Server
	if *metricsAddr != "" {
		reg = obs.New()
		reg.SetHelp("optibfs_up", "1 while the process is up.")
		reg.Gauge("optibfs_up").Set(1)
		obs.PublishExpvar("optibfs", reg)
		var err error
		srv, err = obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfssoak:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "bfssoak: serving metrics at http://%s/metrics\n", srv.Addr)
	}
	// os.Exit skips defers: drain the metrics listener explicitly on
	// every exit path so the final scrape isn't dropped mid-response.
	code, err := run(os.Stdout, *duration, *seeds, *workers, *shards, *seed, *profiles, *algos, *artifacts, *replay, *list, *engines, *verbose, *hybrid, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfssoak:", err)
		code = 2
	}
	obs.CloseGracefully(srv, 2*time.Second)
	os.Exit(code)
}

// runRegistry executes the registry lifecycle soak and returns the
// process exit code: 1 when any invariant was violated, 0 on a clean
// sweep.
func runRegistry(w io.Writer, rounds, workers, ops, graphs int, seed uint64, profiles string, verbose bool) (int, error) {
	cfg := chaos.RegistrySoakConfig{
		Rounds:       rounds,
		Workers:      workers,
		OpsPerWorker: ops,
		Graphs:       graphs,
		Seed:         seed,
	}
	if verbose {
		cfg.Log = w
	}
	if profiles != "" && profiles != "all" {
		names := strings.Split(profiles, ",")
		if len(names) != 1 {
			return 0, fmt.Errorf("-registry takes at most one -profiles name (got %q)", profiles)
		}
		p, err := chaos.ProfileByName(strings.TrimSpace(names[0]))
		if err != nil {
			return 0, err
		}
		cfg.Profile = &p
	}
	rep, err := chaos.RegistrySoak(cfg)
	if err != nil {
		return 0, err
	}
	fmt.Fprintln(w, rep)
	if len(rep.Violations) > 0 {
		for i, v := range rep.Violations {
			if i >= 20 {
				fmt.Fprintf(w, "... and %d more violations\n", len(rep.Violations)-20)
				break
			}
			fmt.Fprintf(w, "violation %s\n", v)
		}
		return 1, nil
	}
	return 0, nil
}

// run executes the selected mode and returns the process exit code.
func run(w io.Writer, duration time.Duration, seeds, workers, shards int, seed uint64,
	profiles, algos, artifacts, replay string, list, engines, verbose, hybrid bool, reg *obs.Registry) (int, error) {
	if list {
		for _, p := range chaos.Profiles() {
			fmt.Fprintf(w, "%-12s yields=%d spin=%d prob=%v\n", p.Name, p.Yields, p.Spin, p.Prob)
		}
		return 0, nil
	}
	if replay != "" {
		r, err := chaos.LoadRepro(replay)
		if err != nil {
			return 0, err
		}
		vs, res, err := chaos.Replay(r)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(w, "replayed %s on %s profile=%s: reached=%d pops=%d dup=%d\n",
			r.Algorithm, r.Graph, r.Profile.Name, res.Reached, res.Pops, res.Duplicates())
		if len(vs) == 0 {
			fmt.Fprintln(w, "no violations this replay (racy repros may need several attempts)")
			return 0, nil
		}
		for _, v := range vs {
			fmt.Fprintf(w, "violation %s\n", v)
		}
		return 1, nil
	}

	cfg := chaos.SoakConfig{
		Seeds:       seeds,
		Workers:     workers,
		Shards:      shards,
		Hybrid:      hybrid,
		BaseSeed:    seed,
		Duration:    duration,
		Engines:     engines,
		ArtifactDir: artifacts,
		Log:         w,
		Verbose:     verbose,
		Registry:    reg,
	}
	var err error
	if cfg.Profiles, err = selectProfiles(profiles); err != nil {
		return 0, err
	}
	if cfg.Algorithms, err = selectAlgos(algos); err != nil {
		return 0, err
	}
	rep, err := chaos.Soak(cfg)
	if err != nil {
		return 0, err
	}
	fmt.Fprintln(w, rep)
	if rep.Failures > 0 {
		return 1, nil
	}
	return 0, nil
}

// selectProfiles resolves the -profiles flag.
func selectProfiles(spec string) ([]chaos.Profile, error) {
	if spec == "" || spec == "all" {
		return nil, nil // SoakConfig default
	}
	var out []chaos.Profile
	for _, name := range strings.Split(spec, ",") {
		p, err := chaos.ProfileByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// selectAlgos resolves the -algos flag.
func selectAlgos(spec string) ([]core.Algorithm, error) {
	if spec == "" || spec == "all" {
		return nil, nil // SoakConfig default
	}
	known := map[string]core.Algorithm{}
	for _, a := range core.Algorithms {
		known[string(a)] = a
	}
	var out []core.Algorithm
	for _, name := range strings.Split(spec, ",") {
		a, ok := known[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown algorithm %q (want one of %v)", name, core.Algorithms)
		}
		out = append(out, a)
	}
	return out, nil
}
