// Command bfsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	bfsbench -exp table5a                 # Table V(a): Lonestar, 12 workers
//	bfsbench -exp table5b                 # Table V(b): Trestles, 32 workers
//	bfsbench -exp fig2a|fig2b             # Figure 2 scalability sweeps
//	bfsbench -exp fig3a|fig3b             # Figure 3 TEPS
//	bfsbench -exp table6                  # Table VI steal statistics
//	bfsbench -exp graphs                  # Table IV: the generated suite
//	bfsbench -exp machines                # Table III: machine profiles
//	bfsbench -exp all                     # everything above
//
// Common flags: -scale (graph size divisor, default 64; 1 = the
// paper's full sizes), -sources (sources averaged per cell), -seed,
// -csv (emit CSV instead of aligned text).
//
// With -metrics-addr the process serves live observability while the
// experiments run: /metrics (Prometheus text), /debug/vars (expvar),
// and /debug/pprof (profiles carry the engines' algo/worker/level-phase
// goroutine labels). -metrics-linger keeps the endpoint up after the
// experiments finish so a final scrape can collect the totals.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/harness"
	"optibfs/internal/obs"
)

func main() {
	var (
		exp           = flag.String("exp", "all", "experiment: table5a|table5b|fig2a|fig2b|fig3a|fig3b|table6|graphs|machines|hybrid|goal|all")
		scale         = flag.Int("scale", 64, "graph size divisor (1 = paper's full sizes)")
		sources       = flag.Int("sources", 8, "random sources averaged per (algorithm, graph) cell")
		seed          = flag.Uint64("seed", 0xb5f5, "experiment seed")
		reps          = flag.Int("reps", 5, "repetitions for table6")
		csv           = flag.Bool("csv", false, "emit CSV instead of aligned text")
		workers       = flag.Int("workers", 0, "override worker count (default: machine cores)")
		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (e.g. localhost:9090; empty = off)")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after the experiments finish")
		reorderM      = flag.String("reorder", "", "vertex relabeling for the core engines: degree|bfs (baselines traverse as given)")
		shards        = flag.Int("shards", 1, "CSR shards for the core engines (>1 = owner-compute sharded; baselines unaffected)")
		hybrid        = flag.Bool("hybrid", false, "direction-optimizing mode for the core engines (bottom-up levels on large frontiers; baselines unaffected)")
	)
	flag.Parse()
	var reg *obs.Registry
	var srv *obs.Server
	if *metricsAddr != "" {
		reg = obs.New()
		reg.SetHelp("optibfs_up", "1 while the process is up.")
		reg.Gauge("optibfs_up").Set(1)
		obs.PublishExpvar("optibfs", reg)
		var err error
		srv, err = obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: serving metrics at http://%s/metrics\n", srv.Addr)
	}
	// Every exit path below must drain the metrics listener explicitly:
	// os.Exit skips defers, which used to drop in-flight scrapes.
	code := 0
	if err := run(os.Stdout, *exp, *scale, *sources, *seed, *reps, *csv, *workers, *reorderM, *shards, *hybrid, reg); err != nil {
		fmt.Fprintln(os.Stderr, "bfsbench:", err)
		code = 1
	}
	if reg != nil && code == 0 && *metricsLinger > 0 {
		fmt.Fprintf(os.Stderr, "bfsbench: experiments done, metrics endpoint up for another %s\n", *metricsLinger)
		time.Sleep(*metricsLinger)
	}
	obs.CloseGracefully(srv, 2*time.Second)
	os.Exit(code)
}

func run(w io.Writer, exp string, scale, sources int, seed uint64, reps int, csv bool, workers int, reorderMode string, shards int, hybrid bool, reg *obs.Registry) error {
	cfg := func(m costmodel.Machine) harness.Config {
		return harness.Config{
			Machine:  m,
			Workers:  workers,
			Sources:  sources,
			ScaleDiv: scale,
			Seed:     seed,
			Opt:      core.Options{Reorder: core.ReorderMode(reorderMode), Shards: shards, Hybrid: hybrid},
			Registry: reg,
		}.WithDefaults()
	}
	emit := func(t *harness.Table, err error) error {
		if err != nil {
			return err
		}
		if csv {
			return t.RenderCSV(w)
		}
		return t.Render(w)
	}
	experiments := map[string]func() error{
		"table5a":    func() error { return emit(harness.Table5(nil, cfg(costmodel.Lonestar))) },
		"table5b":    func() error { return emit(harness.Table5(nil, cfg(costmodel.Trestles))) },
		"fig2a":      func() error { return emit(harness.Fig2(nil, cfg(costmodel.Lonestar))) },
		"fig2b":      func() error { return emit(harness.Fig2(nil, cfg(costmodel.Trestles))) },
		"fig3a":      func() error { return emit(harness.Fig3(nil, cfg(costmodel.Lonestar))) },
		"fig3b":      func() error { return emit(harness.Fig3(nil, cfg(costmodel.Trestles))) },
		"table6":     func() error { return emit(harness.Table6(nil, cfg(costmodel.Lonestar), reps)) },
		"graphs":     func() error { return emit(harness.GraphsTable(nil, cfg(costmodel.Lonestar))) },
		"machines":   func() error { return emit(harness.MachinesTable(nil)) },
		"extensions": func() error { return emit(harness.Extensions(nil, cfg(costmodel.Lonestar))) },
		"hybrid":     func() error { return emit(harness.HybridTable(nil, cfg(costmodel.Lonestar))) },
		"goal":       func() error { return emit(harness.GoalTable(nil, cfg(costmodel.Lonestar))) },
	}
	if exp == "all" {
		for _, name := range []string{"machines", "graphs", "table5a", "table5b", "fig2a", "fig2b", "fig3a", "fig3b", "table6", "extensions", "hybrid", "goal"} {
			if err := experiments[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := experiments[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return fn()
}
