package main

import (
	"bytes"
	"strings"
	"testing"
)

// fastArgs keeps experiment tests quick: tiny graphs, few sources.
const (
	testScale   = 2048
	testSources = 2
	testSeed    = 7
	testReps    = 1
)

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers")
	}
	for _, exp := range []string{"machines", "graphs", "table6", "fig2a", "goal"} {
		var buf bytes.Buffer
		if err := run(&buf, exp, testScale, testSources, testSeed, testReps, false, 4, "", 1, false, nil); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "machines", testScale, testSources, testSeed, testReps, true, 4, "", 1, false, nil); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("csv output missing commas: %q", first)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "tableZ", testScale, testSources, testSeed, testReps, false, 4, "", 1, false, nil); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestRunTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("table5 runs every algorithm on every graph")
	}
	var buf bytes.Buffer
	if err := run(&buf, "table5a", testScale, 1, testSeed, testReps, false, 4, "", 1, false, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BFS_WSL", "Baseline1(bag)", "wikipedia", "rmat-10M-1B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table5a output missing %q", want)
		}
	}
}
