// Command graph500 runs the Graph500-style BFS benchmark procedure the
// paper's introduction motivates ("BFS is being used as a graph
// benchmark application for ranking supercomputers"):
//
//  1. generate an RMAT graph at a given scale (2^scale vertices,
//     edgefactor × 2^scale edges, the paper's a=.45/b=.15/c=.15),
//  2. run BFS from `rounds` random non-isolated sources,
//  3. validate each search (distances structurally, parents if tracked),
//  4. report per-round TEPS and the harmonic mean TEPS.
//
// Usage:
//
//	graph500 -scale 18 -edgefactor 16 -algo BFS_WSL -rounds 16
//
// With -st the procedure measures goal-directed point-to-point search
// instead of TEPS: each round runs one validated full BFS to pick a
// mid-depth target, then times a full sweep and an s-t search
// (core.Options.Target early termination) back to back in alternating
// order, reporting per-round and paired-median speedup plus the edge
// fraction the s-t search actually touched.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/harness"
	"optibfs/internal/stats"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the vertex count")
		edgefactor = flag.Int64("edgefactor", 16, "edges per vertex")
		algoName   = flag.String("algo", "BFS_WSL", "algorithm to benchmark")
		rounds     = flag.Int("rounds", 16, "BFS rounds (Graph500 uses 64)")
		workers    = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 2, "generator/run seed")
		skipVal    = flag.Bool("skip-validation", false, "skip per-round validation")
		machine    = flag.String("machine", "Lonestar", "cost-model machine for modeled TEPS")
		reorderM   = flag.String("reorder", "", "vertex relabeling: degree|bfs (validation stays in original ids)")
		shards     = flag.Int("shards", 1, "CSR shards (>1 = owner-compute sharded engines)")
		hybrid     = flag.Bool("hybrid", false, "direction-optimizing mode (bottom-up levels on large frontiers)")
		st         = flag.Bool("st", false, "paired s-t mode: time full BFS vs goal-directed search to a mid-depth target each round")
	)
	flag.Parse()
	if err := run(os.Stdout, *scale, *edgefactor, *algoName, *rounds, *workers, *seed, *skipVal, *machine, *reorderM, *shards, *hybrid, *st); err != nil {
		fmt.Fprintln(os.Stderr, "graph500:", err)
		os.Exit(1)
	}
}

func run(w *os.File, scale int, edgefactor int64, algoName string, rounds, workers int, seed uint64, skipVal bool, machineName, reorderMode string, shards int, hybrid bool, st bool) error {
	if scale < 1 || scale > 30 {
		return fmt.Errorf("scale %d out of [1,30]", scale)
	}
	if rounds < 1 {
		return fmt.Errorf("rounds %d < 1", rounds)
	}
	algo, err := harness.AlgoByName(algoName)
	if err != nil {
		return err
	}
	if st && !algo.SupportsGoals() {
		return fmt.Errorf("-st needs the core family; %s runs to exhaustion", algoName)
	}
	var machine costmodel.Machine
	switch machineName {
	case "Lonestar":
		machine = costmodel.Lonestar
	case "Trestles":
		machine = costmodel.Trestles
	case "Local":
		// Calibrate the cost constants on this host (microbenchmarks,
		// a few tens of ms) so modeled times describe this machine.
		machine = costmodel.Calibrate(0)
	default:
		return fmt.Errorf("unknown machine %q (Lonestar|Trestles|Local)", machineName)
	}

	n := int32(1) << scale
	m := edgefactor * int64(n)
	genStart := time.Now()
	g, err := gen.Graph500RMAT(n, m, seed, gen.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph500: scale=%d n=%d m=%d (generated in %.2fs)\n",
		scale, g.NumVertices(), g.NumEdges(), time.Since(genStart).Seconds())

	sources := harness.PickSources(g, rounds, seed^0x9e3779b9)
	opt := core.Options{
		Workers: workers, TrackParents: !skipVal, PersistentWorkers: true,
		Reorder: core.ReorderMode(reorderMode), Shards: shards, Hybrid: hybrid,
	}
	if shards > 1 {
		fmt.Fprintf(w, "shards: %d (owner-compute, cross-shard frontier exchange)\n", shards)
	}
	if hybrid {
		fmt.Fprintf(w, "hybrid: direction-optimizing (alpha/beta switched bottom-up levels)\n")
	}
	if opt.Reorder != core.ReorderNone {
		// The engine relabels internally; ValidateDistances and
		// ValidateParents below run against the ORIGINAL graph, proving
		// the relabeled searches semantics-preserving every round.
		fmt.Fprintf(w, "reorder: %s (validating in original ids)\n", opt.Reorder)
	}

	// One engine serves every round: per-round state is pooled, so the
	// timed region measures traversal, not allocation (the Graph500
	// procedure times the searches only).
	runner, err := algo.NewRunner(g, opt)
	if err != nil {
		return err
	}
	defer runner.Close()
	if st {
		return runST(w, g, runner, sources, seed, skipVal)
	}
	var harmonicAcc, modeledHarmonicAcc float64
	valid := 0
	for i, src := range sources {
		runner.Reseed(seed + uint64(i) + 1)
		start := time.Now()
		res, err := runner.Run(src)
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		measuredTEPS := stats.TEPS(res.EdgesTraversed, elapsed)
		modeledTEPS := stats.TEPS(res.EdgesTraversed, costmodel.Modeled(machine, algo.Shape(), res))

		status := "skipped"
		if !skipVal {
			if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
				return fmt.Errorf("round %d: %w", i, err)
			}
			if res.Parent != nil {
				if err := graph.ValidateParents(g, src, res.Dist, res.Parent); err != nil {
					return fmt.Errorf("round %d: %w", i, err)
				}
			}
			status = "ok"
			valid++
		}
		fmt.Fprintf(w, "round %2d: src=%-9d reached=%-9d levels=%-3d teps=%s modeled=%s validation=%s\n",
			i, src, res.Reached, res.Levels, fmtTEPS(measuredTEPS), fmtTEPS(modeledTEPS), status)
		if measuredTEPS > 0 {
			harmonicAcc += 1 / measuredTEPS
		}
		if modeledTEPS > 0 {
			modeledHarmonicAcc += 1 / modeledTEPS
		}
	}
	k := float64(len(sources))
	fmt.Fprintf(w, "\nharmonic-mean TEPS: measured=%s modeled(%s)=%s over %d rounds\n",
		fmtTEPS(harmonic(k, harmonicAcc)), machine.Name, fmtTEPS(harmonic(k, modeledHarmonicAcc)), len(sources))
	if !skipVal {
		fmt.Fprintf(w, "validation: %d/%d rounds passed\n", valid, len(sources))
	}
	return nil
}

// runST is the -st procedure: per round, one validated full BFS picks a
// target at roughly half the eccentricity, then a full sweep and a
// goal-directed search to that target are timed back to back (order
// alternating by round, both reseeded identically, same pooled engine),
// so each round yields one paired full/s-t ratio. The headline number is
// the median of those per-round ratios — pairing makes it immune to
// slow drift (thermal, page cache) across the run.
func runST(w *os.File, g *graph.CSR, runner *harness.Runner, sources []int32, seed uint64, skipVal bool) error {
	ctx := context.Background()
	var ratios, fracs, fullMS, stMS []float64
	for i, src := range sources {
		roundSeed := seed + uint64(i) + 1

		// Pick + validate round: untimed full run chooses the target.
		runner.Reseed(roundSeed)
		res, err := runner.Run(src)
		if err != nil {
			return err
		}
		if !skipVal {
			if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
				return fmt.Errorf("round %d: %w", i, err)
			}
		}
		wantDepth := res.Levels / 2
		if wantDepth < 1 {
			wantDepth = 1
		}
		dst := src
		for v, d := range res.Dist {
			if d == int32(wantDepth) {
				dst = int32(v)
				break
			}
		}
		wantDist := res.Dist[dst]
		fullEdges := res.EdgesTraversed

		// Timed pair, order alternating by round parity.
		timedFull := func() (float64, error) {
			runner.Reseed(roundSeed)
			start := time.Now()
			_, err := runner.Run(src)
			return time.Since(start).Seconds(), err
		}
		timedST := func() (float64, int64, error) {
			runner.Reseed(roundSeed)
			start := time.Now()
			res, err := runner.RunGoal(ctx, src, core.GoalTo(dst))
			elapsed := time.Since(start).Seconds()
			if err != nil {
				return 0, 0, err
			}
			if res.Dist[dst] != wantDist {
				return 0, 0, fmt.Errorf("round %d: s-t dist[%d] = %d, full BFS says %d", i, dst, res.Dist[dst], wantDist)
			}
			return elapsed, res.EdgesTraversed, nil
		}
		var tFull, tST float64
		var stEdges int64
		if i%2 == 0 {
			if tFull, err = timedFull(); err != nil {
				return err
			}
			if tST, stEdges, err = timedST(); err != nil {
				return err
			}
		} else {
			if tST, stEdges, err = timedST(); err != nil {
				return err
			}
			if tFull, err = timedFull(); err != nil {
				return err
			}
		}
		ratio := tFull / tST
		frac := float64(stEdges) / float64(fullEdges)
		ratios = append(ratios, ratio)
		fracs = append(fracs, frac)
		fullMS = append(fullMS, tFull*1e3)
		stMS = append(stMS, tST*1e3)
		status := "skipped"
		if !skipVal {
			status = "ok"
		}
		fmt.Fprintf(w, "round %2d: src=%-9d dst=%-9d dist=%-3d full=%8.2fms s-t=%8.2fms speedup=%5.2fx edges=%5.1f%% validation=%s\n",
			i, src, dst, wantDist, tFull*1e3, tST*1e3, ratio, frac*100, status)
	}
	fmt.Fprintf(w, "\npaired-median s-t speedup: %.2fx (full %.2fms vs s-t %.2fms median, %.1f%% of edges) over %d rounds\n",
		stats.Summarize(ratios).Median, stats.Summarize(fullMS).Median, stats.Summarize(stMS).Median,
		stats.Summarize(fracs).Median*100, len(sources))
	return nil
}

func harmonic(k, accOfInverses float64) float64 {
	if accOfInverses == 0 {
		return 0
	}
	return k / accOfInverses
}

func fmtTEPS(t float64) string {
	switch {
	case t >= 1e9:
		return fmt.Sprintf("%.2fGTEPS", t/1e9)
	case t >= 1e6:
		return fmt.Sprintf("%.1fMTEPS", t/1e6)
	case math.IsNaN(t) || t <= 0:
		return "n/a"
	default:
		return fmt.Sprintf("%.0fTEPS", t)
	}
}
