package main

import (
	"os"
	"testing"
)

func TestGraph500SmallRun(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run(null, 8, 8, "BFS_WSL", 3, 4, 1, false, "Lonestar", "", 1, false, false); err != nil {
		t.Fatal(err)
	}
}

// TestGraph500Sharded runs the procedure on the sharded backend; every
// round validates distances AND parents against the original graph.
func TestGraph500Sharded(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run(null, 8, 8, "BFS_WSL", 3, 4, 1, false, "Lonestar", "", 2, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestGraph500SkipValidation(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run(null, 7, 4, "sbfs", 2, 1, 1, true, "Trestles", "", 1, false, false); err != nil {
		t.Fatal(err)
	}
}

// TestGraph500Reorder runs the benchmark procedure with relabeling on;
// the per-round ValidateDistances/ValidateParents calls run against the
// original graph, so a pass proves the relabeled searches correct.
func TestGraph500Reorder(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	for _, mode := range []string{"degree", "bfs"} {
		if err := run(null, 8, 8, "BFS_WSL", 3, 4, 1, false, "Lonestar", mode, 1, false, false); err != nil {
			t.Fatalf("reorder %q: %v", mode, err)
		}
	}
}

// TestGraph500ST runs the paired s-t procedure: each round's goal run
// self-checks its target distance against the full BFS, so a pass means
// early termination settled the target exactly.
func TestGraph500ST(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run(null, 8, 8, "BFS_WSL", 3, 4, 1, false, "Lonestar", "", 1, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run(null, 8, 8, "BFS_WSL", 3, 4, 1, false, "Lonestar", "", 2, false, true); err != nil {
		t.Fatalf("sharded -st: %v", err)
	}
	if err := run(null, 8, 8, "Baseline1(bag)", 2, 1, 1, false, "Lonestar", "", 1, false, true); err == nil {
		t.Fatal("baseline accepted -st")
	}
}

func TestGraph500Errors(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run(null, 0, 8, "BFS_WSL", 3, 1, 1, false, "Lonestar", "", 1, false, false); err == nil {
		t.Fatal("accepted scale 0")
	}
	if err := run(null, 8, 8, "BFS_WSL", 0, 1, 1, false, "Lonestar", "", 1, false, false); err == nil {
		t.Fatal("accepted 0 rounds")
	}
	if err := run(null, 8, 8, "warp-bfs", 3, 1, 1, false, "Lonestar", "", 1, false, false); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if err := run(null, 8, 8, "BFS_WSL", 3, 1, 1, false, "DeepBlue", "", 1, false, false); err == nil {
		t.Fatal("accepted unknown machine")
	}
}

func TestHarmonic(t *testing.T) {
	if h := harmonic(2, 1.0/4+1.0/12); h != 6 {
		t.Fatalf("harmonic = %g, want 6", h)
	}
	if h := harmonic(3, 0); h != 0 {
		t.Fatalf("harmonic(0) = %g", h)
	}
}

func TestFmtTEPS(t *testing.T) {
	if s := fmtTEPS(2.5e9); s != "2.50GTEPS" {
		t.Fatalf("%q", s)
	}
	if s := fmtTEPS(0); s != "n/a" {
		t.Fatalf("%q", s)
	}
}
