package optibfs_test

import (
	"fmt"

	"optibfs"
)

// The basic workflow: generate (or load) a graph, search, verify.
func ExampleBFS() {
	g, err := optibfs.NewGrid(4, 4)
	if err != nil {
		panic(err)
	}
	res, err := optibfs.BFS(g, 0, optibfs.BFSWSL, &optibfs.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("reached:", res.Reached)
	fmt.Println("levels:", res.Levels)
	fmt.Println("lock-free:", res.Counters.LockAcquisitions == 0 && res.Counters.AtomicRMW == 0)
	// Output:
	// reached: 16
	// levels: 7
	// lock-free: true
}

// Distances can be validated without a reference run.
func ExampleValidate() {
	g, _ := optibfs.NewGrid(3, 3)
	res, _ := optibfs.BFS(g, 0, optibfs.BFSCL, nil)
	fmt.Println(optibfs.Validate(g, 0, res.Dist) == nil)
	// Output: true
}

// TrackParents yields a BFS tree; PathTo extracts explicit routes.
func ExamplePathTo() {
	g, _ := optibfs.FromEdges(4, []optibfs.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	})
	res, _ := optibfs.BFS(g, 0, optibfs.Serial, &optibfs.Options{TrackParents: true})
	fmt.Println(optibfs.PathTo(res.Parent, 3))
	// Output: [0 1 2 3]
}

// Every algorithm reports its synchronization profile, making the
// paper's lock-freedom claim checkable per run.
func ExampleAlgorithm_Lockfree() {
	fmt.Println(optibfs.BFSWSL.Lockfree(), optibfs.BFSW.Lockfree())
	// Output: true false
}

// Connected components, diameter estimation, and betweenness
// centrality are provided on top of the parallel BFS.
func ExampleConnectedComponents() {
	g, _ := optibfs.FromEdgesUndirected(5, []optibfs.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, // component of 3
		{Src: 3, Dst: 4}, // component of 2
	})
	_, sizes, _ := optibfs.ConnectedComponents(g, nil)
	fmt.Println(sizes)
	// Output: [3 2]
}

func ExampleBetweenness() {
	// Path 0-1-2: the middle vertex brokers both directed pairs.
	g, _ := optibfs.FromEdgesUndirected(3, []optibfs.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2},
	})
	bc, _ := optibfs.Betweenness(g, []int32{0, 1, 2}, nil)
	fmt.Println(bc)
	// Output: [0 2 0]
}
