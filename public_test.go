package optibfs

import (
	"context"
	"strings"
	"testing"
)

func TestReorderWrappers(t *testing.T) {
	g, err := NewPowerLaw(2048, 16384, 2.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialBFS(g, 0)

	g2, perm, err := ReorderByBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := SerialBFS(g2, perm[0])
	for v := int32(0); v < g.NumVertices(); v++ {
		if want[v] != got[perm[v]] {
			t.Fatalf("BFS reorder changed distance of %d: %d vs %d", v, want[v], got[perm[v]])
		}
	}

	g3, perm3, err := ReorderByDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if g3.OutDegree(0) < g3.OutDegree(g3.NumVertices()-1) {
		t.Fatal("degree reorder did not pack hubs first")
	}
	got3 := SerialBFS(g3, perm3[0])
	for v := int32(0); v < g.NumVertices(); v++ {
		if want[v] != got3[perm3[v]] {
			t.Fatalf("degree reorder changed distance of %d", v)
		}
	}

	if _, _, err := ReorderByBFS(g, -1); err == nil {
		t.Fatal("accepted bad source")
	}
}

func TestParentsAndPathsPublic(t *testing.T) {
	g, err := NewLayered(5000, 30000, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, BFSWSL, &Options{Workers: 4, TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateParents(g, 0, res.Dist, res.Parent); err != nil {
		t.Fatal(err)
	}
	dst := g.NumVertices() - 1
	path := PathTo(res.Parent, dst)
	if int32(len(path)-1) != res.Dist[dst] {
		t.Fatalf("path length %d != dist %d", len(path)-1, res.Dist[dst])
	}
	if path[0] != 0 || path[len(path)-1] != dst {
		t.Fatalf("path endpoints wrong: %v", path)
	}
}

func TestLevelSizesPublic(t *testing.T) {
	g, err := NewGrid(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, BFSCL, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelSizes) != int(res.Levels) {
		t.Fatalf("LevelSizes %d entries, Levels %d", len(res.LevelSizes), res.Levels)
	}
	if res.LevelSizes[0] != 1 {
		t.Fatalf("level 0 size %d", res.LevelSizes[0])
	}
}

func TestDirectionOptimizingPublic(t *testing.T) {
	g, err := NewRMAT(8192, 1<<18, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, DirectionOptimizing, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := SerialBFS(g, 0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] wrong", v)
		}
	}
	if res.Counters.BottomUpLevels == 0 {
		t.Fatal("direction optimization never engaged on a dense RMAT graph")
	}
}

func TestAllAlgorithmsNamed(t *testing.T) {
	// Every listed algorithm must have a distinct non-empty name.
	seen := map[Algorithm]bool{}
	for _, a := range Algorithms {
		if a == "" {
			t.Fatal("empty algorithm name")
		}
		if seen[a] {
			t.Fatalf("duplicate algorithm %q", a)
		}
		seen[a] = true
	}
	if !strings.HasPrefix(string(Baseline2Read), "Baseline2:") {
		t.Fatal("baseline2 naming convention broken")
	}
}

func TestWriteEdgeListPublicRoundTrip(t *testing.T) {
	g, err := FromEdges(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("m=%d", g2.NumEdges())
	}
}

func TestNewModelGenerators(t *testing.T) {
	ba, err := NewBarabasiAlbert(1000, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := ba.MaxDegree(); float64(d) < 4*ba.AvgDegree() {
		t.Fatalf("BA produced no hubs: max=%d avg=%.1f", d, ba.AvgDegree())
	}
	sw, err := NewSmallWorld(1000, 6, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	dist := SerialBFS(sw, 0)
	reached := 0
	for _, d := range dist {
		if d != Unreached {
			reached++
		}
	}
	if reached != 1000 {
		t.Fatalf("small world reached %d/1000", reached)
	}
}

func TestAnalysisWrappers(t *testing.T) {
	g, err := NewSmallWorld(2000, 6, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	labels, sizes, err := ConnectedComponents(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2000 || len(sizes) != 1 {
		t.Fatalf("components: %d labels, %d components", len(labels), len(sizes))
	}
	diam, err := EstimateDiameter(g, 0, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if diam < 3 {
		t.Fatalf("diameter bound %d implausibly small", diam)
	}
	bc, err := Betweenness(g, []int32{0, 500, 1000}, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	positive := false
	for _, v := range bc {
		if v > 0 {
			positive = true
			break
		}
	}
	if !positive {
		t.Fatal("betweenness all zero")
	}
}

func TestPersistentWorkersPublic(t *testing.T) {
	g, err := NewLayered(3000, 20000, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialBFS(g, 0)
	res, err := BFS(g, 0, BFSWSL, &Options{Workers: 4, PersistentWorkers: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] wrong under persistent workers", v)
		}
	}
}

func TestTracePublic(t *testing.T) {
	g, err := NewRandom(2000, 16000, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, BFSCL, &Options{Workers: 4, TraceCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, evs := range res.Events {
		for _, e := range evs {
			if e.Kind == EventFetch {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no fetch events in public trace")
	}
}

func TestBFSContextPublic(t *testing.T) {
	g, err := NewRandom(500, 2500, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res, err := BFSContext(ctx, g, 0, BFSWSL, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached < 1 {
		t.Fatal("no progress")
	}
	cancel()
	if _, err := BFSContext(ctx, g, 0, BFSCL, nil); err == nil {
		t.Fatal("canceled context accepted")
	}
	if _, err := BFSContext(ctx, g, 0, Baseline1, nil); err == nil {
		t.Fatal("baseline accepted canceled context")
	}
}
