package optibfs

import (
	"context"
	"testing"
)

// TestEngineAPI checks the public Engine across the dispatch families:
// core-backed, direction-optimizing, and the baseline one-shot
// fallback all match the serial reference across repeated runs.
func TestEngineAPI(t *testing.T) {
	g, err := NewPowerLaw(2048, 16384, 2.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialBFS(g, 0)
	for _, algo := range []Algorithm{Serial, BFSCL, BFSWSL, DirectionOptimizing, Baseline1, Baseline2Hybrid} {
		e, err := NewEngine(g, algo, &Options{Workers: 4, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got := e.Algorithm(); got != algo {
			t.Fatalf("Algorithm() = %q, want %q", got, algo)
		}
		if e.Graph() != g {
			t.Fatalf("%s: Graph() does not return the bound graph", algo)
		}
		for i := 0; i < 3; i++ {
			e.Reseed(uint64(i) + 1)
			res, err := e.Run(0)
			if err != nil {
				t.Fatalf("%s run %d: %v", algo, i, err)
			}
			for v, d := range want {
				if res.Dist[v] != d {
					t.Fatalf("%s run %d: dist[%d] = %d, want %d", algo, i, v, res.Dist[v], d)
				}
			}
		}
		e.Close()
		if _, err := e.Run(0); err == nil {
			t.Fatalf("%s: Run on a closed engine succeeded", algo)
		}
	}
}

// TestEngineShardedPublic checks that Options.Shards routes the
// public surface — both one-shot BFS and the reusable Engine — onto
// the sharded backend and still matches the serial reference, and
// that the sharded backend's Reorder rejection surfaces as a
// constructor error rather than being silently dropped.
func TestEngineShardedPublic(t *testing.T) {
	g, err := NewPowerLaw(2048, 16384, 2.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialBFS(g, 0)
	for _, shards := range []int{2, 4} {
		opt := &Options{Workers: 4, Seed: 2, Shards: shards}
		res, err := BFS(g, 0, BFSWSL, opt)
		if err != nil {
			t.Fatalf("BFS shards=%d: %v", shards, err)
		}
		for v, d := range want {
			if res.Dist[v] != d {
				t.Fatalf("BFS shards=%d: dist[%d] = %d, want %d", shards, v, res.Dist[v], d)
			}
		}
		e, err := NewEngine(g, BFSWL, opt)
		if err != nil {
			t.Fatalf("NewEngine shards=%d: %v", shards, err)
		}
		for i := 0; i < 3; i++ {
			res, err := e.Run(0)
			if err != nil {
				t.Fatalf("engine shards=%d run %d: %v", shards, i, err)
			}
			for v, d := range want {
				if res.Dist[v] != d {
					t.Fatalf("engine shards=%d run %d: dist[%d] = %d, want %d", shards, i, v, res.Dist[v], d)
				}
			}
		}
		e.Close()
	}
	if _, err := NewEngine(g, BFSWL, &Options{Workers: 2, Shards: 2, Reorder: ReorderDegree}); err == nil {
		t.Fatal("sharded engine accepted Reorder")
	}
}

// TestEngineRunMany checks the batched path: every source is visited
// in order and an error from visit stops the batch.
func TestEngineRunMany(t *testing.T) {
	g, err := NewRandom(1000, 6000, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, BFSWSL, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sources := []int32{0, 5, 9, 0}
	var seen []int
	err = e.RunMany(sources, func(i int, res *Result) error {
		if res.Reached == 0 {
			t.Fatalf("source %d: empty result", sources[i])
		}
		seen = append(seen, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(sources) {
		t.Fatalf("visited %d sources, want %d", len(seen), len(sources))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("visit order %v not sequential", seen)
		}
	}
	stop := e.RunMany(sources, func(i int, res *Result) error {
		if i == 1 {
			return context.Canceled
		}
		return nil
	})
	if stop != context.Canceled {
		t.Fatalf("visit error not propagated: %v", stop)
	}
}

// TestEngineUnknownAlgorithm checks NewEngine's validation.
func TestEngineUnknownAlgorithm(t *testing.T) {
	g, err := NewRandom(100, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(g, "no-such-algo", nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := NewEngine(nil, BFSCL, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewEngine(nil, Baseline1, nil); err == nil {
		t.Fatal("nil graph accepted for baseline fallback")
	}
}

// TestEngineRunContextCancel checks a canceled context surfaces and
// leaves the engine reusable.
func TestEngineRunContextCancel(t *testing.T) {
	g, err := NewRandom(1000, 6000, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialBFS(g, 0)
	e, err := NewEngine(g, BFSCL, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, 0); err == nil {
		t.Fatal("pre-canceled context did not error")
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("after cancel: dist[%d] = %d, want %d", v, res.Dist[v], d)
		}
	}
}
