package optibfs

import (
	"context"
	"fmt"
	"io"

	"optibfs/internal/analysis"
	"optibfs/internal/baseline1"
	"optibfs/internal/baseline2"
	"optibfs/internal/beamer"
	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
	"optibfs/internal/reorder"
	"optibfs/internal/stats"
)

// Graph is a directed graph in compressed-sparse-row form. See
// NewRMAT, NewPowerLaw, NewLayered, FromEdges, and the Read* loaders
// for constructors.
type Graph = graph.CSR

// Edge is one directed edge for FromEdges.
type Edge = graph.Edge

// Options configures a parallel BFS run; the zero value selects
// sensible defaults (GOMAXPROCS workers, adaptive segments, one pool).
type Options = core.Options

// Result reports distances, level count, reach, duplicate work, and
// per-worker instrumentation counters of a BFS run.
type Result = core.Result

// Counters is the per-worker instrumentation bundle (steal taxonomy,
// lock usage, atomic RMW count, work volume).
type Counters = stats.Counters

// Event is one recorded dispatch event (see Options.TraceCapacity).
type Event = core.Event

// EventKind classifies trace events.
type EventKind = core.EventKind

// LevelStat is one entry of a run's per-level timeline (see
// Options.LevelTimeline): frontier size, pops, duplicates, discoveries,
// edges scanned, dispatch activity, and wall time for one BFS level.
type LevelStat = core.LevelStat

// TraceMeta labels a WriteChromeTrace export.
type TraceMeta = obs.TraceMeta

// Trace event kinds (see the core package for semantics).
const (
	EventFetch             = core.EventFetch
	EventStealOK           = core.EventStealOK
	EventStealVictimLocked = core.EventStealVictimLocked
	EventStealVictimIdle   = core.EventStealVictimIdle
	EventStealTooSmall     = core.EventStealTooSmall
	EventStealStale        = core.EventStealStale
	EventStealInvalid      = core.EventStealInvalid
)

// Unreached marks unreachable vertices in Result.Dist.
const Unreached = graph.Unreached

// ReorderMode selects the vertex relabeling Options.Reorder applies at
// engine construction; results are always mapped back to original ids.
type ReorderMode = core.ReorderMode

// Reorder modes for Options.Reorder.
const (
	// ReorderNone runs on the graph as given (the default).
	ReorderNone = core.ReorderNone
	// ReorderDegree packs high-degree vertices first (hub packing).
	ReorderDegree = core.ReorderDegree
	// ReorderBFS renumbers vertices in BFS visitation order.
	ReorderBFS = core.ReorderBFS
)

// Goal bounds a goal-directed search: stop once a target vertex's level
// is fully settled (Target, a vertex id + 1; see GoalTo) and/or once a
// depth bound is reached (MaxDepth levels). The zero Goal means run to
// exhaustion. Termination happens at the level barrier the goal closes,
// so the partial Result is exact for every closed level and
// Result.Truncated reports that deeper levels were skipped.
type Goal = core.Goal

// GoalTo returns a Goal that stops once vertex v's BFS level is settled.
func GoalTo(v int32) Goal { return core.GoalTo(v) }

// ChaosHook observes the lockfree protocols' racy points (see
// Options.Chaos). Implementations may delay or yield to provoke rare
// interleavings; the internal/chaos package provides a seeded
// fault-injecting implementation for the bfssoak harness.
type ChaosHook = core.ChaosHook

// ChaosPoint identifies one instrumented racy point in the lockfree
// protocols.
type ChaosPoint = core.ChaosPoint

// The instrumented chaos points (see the core package for the exact
// protocol step each one precedes).
const (
	// ChaosStealPublish fires before a thief publishes a stolen
	// segment into its own descriptor.
	ChaosStealPublish = core.ChaosStealPublish
	// ChaosSlotZero fires before a worker zeroes a queue slot it
	// popped (the zero-on-read duplicate suppression).
	ChaosSlotZero = core.ChaosSlotZero
	// ChaosDrainAdvance fires before a worker advances its own
	// descriptor front past drained slots.
	ChaosDrainAdvance = core.ChaosDrainAdvance
	// ChaosFrontStore fires before a decentralized fetch publishes a
	// new queue front.
	ChaosFrontStore = core.ChaosFrontStore
	// ChaosPoolStore fires before a decentralized fetch publishes its
	// next-pool rotation.
	ChaosPoolStore = core.ChaosPoolStore
	// ChaosBlockFlush fires between copying a publication block into
	// the shared out-queue and the atomic tail store that makes it
	// visible (see Options.PublishBlock).
	ChaosBlockFlush = core.ChaosBlockFlush
	// ChaosPhase2Advance fires between the optimistic load and store
	// of the phase-2 dispatch cursor.
	ChaosPhase2Advance = core.ChaosPhase2Advance
	// ChaosStall fires once per dispatch boundary on every worker; a
	// hook that sleeps or panics here exercises the stall watchdog and
	// the panic-isolation layer.
	ChaosStall = core.ChaosStall
)

// WorkerPanicError reports a panic recovered inside a worker
// goroutine: the run is aborted, peers are woken, and the error
// carries the worker id, algorithm, level, panic value, and stack.
// Match it with errors.As; the partial Result alongside it records
// progress up to the abort.
type WorkerPanicError = core.WorkerPanicError

// StallError reports that the watchdog observed no heartbeat progress
// for Options.StallTimeout and aborted the run. Match it with
// errors.As; the engine that produced it remains reusable.
type StallError = core.StallError

// ErrPoisoned is returned (wrapped) by Engine runs after a worker
// panic poisoned the engine's barrier state; match with errors.Is and
// discard the engine.
var ErrPoisoned = core.ErrPoisoned

// Algorithm names a BFS variant. The paper's own algorithms use their
// Table II acronyms; the comparison systems use Baseline1/Baseline2
// prefixes.
type Algorithm string

// The paper's algorithms (Table II).
const (
	// Serial is sbfs, the serial array-queue baseline.
	Serial Algorithm = Algorithm(core.Serial)
	// BFSC is centralized-queue BFS with a global lock.
	BFSC Algorithm = Algorithm(core.BFSC)
	// BFSCL is the lockfree optimistic centralized-queue BFS.
	BFSCL Algorithm = Algorithm(core.BFSCL)
	// BFSDL is the lockfree decentralized (queue pools) BFS.
	BFSDL Algorithm = Algorithm(core.BFSDL)
	// BFSW is randomized work-stealing BFS with per-worker locks.
	BFSW Algorithm = Algorithm(core.BFSW)
	// BFSWL is the lockfree optimistic work-stealing BFS.
	BFSWL Algorithm = Algorithm(core.BFSWL)
	// BFSWS is work-stealing BFS with the scale-free two-phase
	// optimization, using locks.
	BFSWS Algorithm = Algorithm(core.BFSWS)
	// BFSWSL is the paper's flagship: lockfree work-stealing with the
	// scale-free two-phase optimization.
	BFSWSL Algorithm = Algorithm(core.BFSWSL)
	// BFSEL is the edge-partitioned lockfree variant the paper sketches
	// as future work (§IV-D): dynamic load balancing over evenly
	// divided edges instead of vertices, so one high-degree hotspot is
	// spread across many dispatch segments automatically.
	BFSEL Algorithm = Algorithm(core.BFSEL)
)

// The comparison systems.
const (
	// Baseline1 is Leiserson & Schardl's PBFS over reducer bags.
	Baseline1 Algorithm = "Baseline1"
	// Baseline2QueueCAS is Hong et al.'s shared-queue BFS (fetch-add
	// dispatch, CAS visited bitmap).
	Baseline2QueueCAS Algorithm = "Baseline2:queue+cas"
	// Baseline2Read is Hong et al.'s read-based (queue-less) BFS.
	Baseline2Read Algorithm = "Baseline2:read"
	// Baseline2LocalQueue is Hong et al.'s local-queue BFS without a
	// visited bitmap.
	Baseline2LocalQueue Algorithm = "Baseline2:localq"
	// Baseline2LocalQueueBitmap is Hong et al.'s strongest CPU variant
	// ("Local queue + read + bitmap").
	Baseline2LocalQueueBitmap Algorithm = "Baseline2:localq+bitmap"
	// Baseline2Hybrid is Hong et al.'s per-level strategy picker.
	Baseline2Hybrid Algorithm = "Baseline2:hybrid"
	// DirectionOptimizing is Beamer et al.'s top-down/bottom-up hybrid
	// (SC 2012, the paper's prior-work ref [5]), implemented here with
	// the same no-lock, no-RMW discipline as the core algorithms.
	DirectionOptimizing Algorithm = "DirectionOptimizing"
)

// Algorithms lists every supported algorithm in presentation order.
var Algorithms = []Algorithm{
	Serial, BFSC, BFSCL, BFSDL, BFSW, BFSWL, BFSWS, BFSWSL, BFSEL,
	Baseline1, Baseline2QueueCAS, Baseline2Read, Baseline2LocalQueue,
	Baseline2LocalQueueBitmap, Baseline2Hybrid, DirectionOptimizing,
}

// Lockfree reports whether the algorithm's dynamic load balancer uses
// neither locks nor atomic read-modify-write instructions.
func (a Algorithm) Lockfree() bool {
	return core.Algorithm(a).Lockfree()
}

// BFS runs the selected algorithm on g from source src. A nil opt is
// treated as the zero Options.
func BFS(g *Graph, src int32, algo Algorithm, opt *Options) (*Result, error) {
	return BFSContext(context.Background(), g, src, algo, opt)
}

// BFSContext is BFS with cancellation. The paper's algorithms check
// the context at every level boundary (cancellation latency is the
// level in flight); the baseline runtimes do not support cancellation
// and return an error if ctx is already done when they start.
func BFSContext(ctx context.Context, g *Graph, src int32, algo Algorithm, opt *Options) (*Result, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	switch algo {
	case Serial, BFSC, BFSCL, BFSDL, BFSW, BFSWL, BFSWS, BFSWSL, BFSEL:
		return core.RunContext(ctx, g, src, core.Algorithm(algo), o)
	case Baseline1, Baseline2QueueCAS, Baseline2Read, Baseline2LocalQueue,
		Baseline2LocalQueueBitmap, Baseline2Hybrid, DirectionOptimizing:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	switch algo {
	case Baseline1:
		return baseline1.Run(g, src, o)
	case Baseline2QueueCAS:
		return baseline2.Run(g, src, baseline2.QueueCAS, o)
	case Baseline2Read:
		return baseline2.Run(g, src, baseline2.ReadArray, o)
	case Baseline2LocalQueue:
		return baseline2.Run(g, src, baseline2.LocalQueue, o)
	case Baseline2LocalQueueBitmap:
		return baseline2.Run(g, src, baseline2.LocalQueueBitmap, o)
	case Baseline2Hybrid:
		return baseline2.Run(g, src, baseline2.Hybrid, o)
	case DirectionOptimizing:
		return beamer.Run(g, src, beamer.Options{Options: o})
	default:
		return nil, fmt.Errorf("optibfs: unknown algorithm %q", algo)
	}
}

// WriteChromeTrace renders a run's dispatch events (Options.
// TraceCapacity) and level timeline (Options.LevelTimeline) as Chrome
// trace_event JSON, loadable in Perfetto or chrome://tracing. It
// errors if the run recorded no events.
func WriteChromeTrace(w io.Writer, meta TraceMeta, res *Result) error {
	return obs.WriteChromeTrace(w, meta, res)
}

// SerialBFS runs the reference serial BFS (convenience wrapper).
func SerialBFS(g *Graph, src int32) []int32 {
	return graph.ReferenceBFS(g, src)
}

// Validate checks a distance array against the graph structure,
// Graph500-style. Use it to verify any BFS output.
func Validate(g *Graph, src int32, dist []int32) error {
	return graph.ValidateDistances(g, src, dist)
}

// ValidateParents checks a BFS parent array (from Options.TrackParents)
// against the distances, completing the Graph500-style validation.
func ValidateParents(g *Graph, src int32, dist, parent []int32) error {
	return graph.ValidateParents(g, src, dist, parent)
}

// PathTo reconstructs the source-to-v path from a parent array
// (source-first); nil if v was not reached.
func PathTo(parent []int32, v int32) []int32 {
	return graph.PathTo(parent, v)
}

// FromEdges builds a graph with n vertices from a directed edge list.
func FromEdges(n int32, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges, graph.BuildOptions{})
}

// FromEdgesUndirected builds the symmetrized (undirected) graph.
func FromEdgesUndirected(n int32, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true})
}

// NewRMAT generates a Graph500-style RMAT graph (a=.45, b=.15, c=.15,
// the parameters of the paper's synthetic graphs) with n vertices and
// m edges, deterministically from seed.
func NewRMAT(n int32, m int64, seed uint64) (*Graph, error) {
	return gen.Graph500RMAT(n, m, seed, gen.Options{})
}

// NewPowerLaw generates a scale-free (Chung–Lu) graph with power-law
// exponent gamma (2 < gamma < 3 matches real-world networks, §IV).
func NewPowerLaw(n int32, m int64, gamma float64, seed uint64) (*Graph, error) {
	return gen.ChungLu(n, m, gamma, seed, gen.Options{})
}

// NewLayered generates a connected graph whose BFS from vertex 0
// explores `layers` levels with near-uniform frontiers — a controlled
// stand-in for mesh/circuit graphs of a given diameter.
func NewLayered(n int32, m int64, layers int32, seed uint64) (*Graph, error) {
	return gen.LayeredRandom(n, m, layers, seed, gen.Options{})
}

// NewRandom generates a uniform G(n, m) directed graph.
func NewRandom(n int32, m int64, seed uint64) (*Graph, error) {
	return gen.ErdosRenyi(n, m, seed, gen.Options{})
}

// NewBarabasiAlbert generates an undirected scale-free graph by
// preferential attachment (degree exponent ≈ 3); each new vertex
// attaches `attach` edges to degree-proportional targets.
func NewBarabasiAlbert(n int32, attach int, seed uint64) (*Graph, error) {
	return gen.BarabasiAlbert(n, attach, seed, gen.Options{})
}

// NewSmallWorld generates a Watts–Strogatz small-world graph: a ring
// lattice of degree k with each edge rewired with probability beta.
func NewSmallWorld(n int32, k int, beta float64, seed uint64) (*Graph, error) {
	return gen.WattsStrogatz(n, k, beta, seed, gen.Options{})
}

// NewGrid generates an undirected rows x cols lattice.
func NewGrid(rows, cols int32) (*Graph, error) {
	return gen.Grid2D(rows, cols, false)
}

// ConnectedComponents labels the weakly-connected components of g
// using repeated parallel BFS, returning each vertex's component id
// and the component sizes.
func ConnectedComponents(g *Graph, opt *Options) (labels []int32, sizes []int64, err error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	return analysis.Components(g, o)
}

// EstimateDiameter lower-bounds the diameter of src's component with
// the classic double-sweep heuristic (two parallel BFS runs).
func EstimateDiameter(g *Graph, src int32, opt *Options) (int32, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	return analysis.DoubleSweep(g, src, o)
}

// Betweenness computes Brandes betweenness centrality restricted to
// the given sources (exact when sources covers every vertex, a sample
// estimate otherwise), with one parallel BFS per source.
func Betweenness(g *Graph, sources []int32, opt *Options) ([]float64, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	return analysis.Betweenness(g, sources, o)
}

// ReorderByBFS relabels g in BFS visitation order from src, improving
// the traversal locality of subsequent searches. It returns the new
// graph and the permutation (newID = perm[oldID]).
func ReorderByBFS(g *Graph, src int32) (*Graph, []int32, error) {
	perm, err := reorder.ByBFS(g, src)
	if err != nil {
		return nil, nil, err
	}
	g2, err := reorder.Apply(g, perm)
	if err != nil {
		return nil, nil, err
	}
	return g2, perm, nil
}

// ReorderByDegree relabels g with high-degree vertices first (hub
// packing). It returns the new graph and the permutation.
func ReorderByDegree(g *Graph) (*Graph, []int32, error) {
	perm := reorder.ByDegreeDescending(g)
	g2, err := reorder.Apply(g, perm)
	if err != nil {
		return nil, nil, err
	}
	return g2, perm, nil
}

// ReadMatrixMarket loads a MatrixMarket coordinate file (the Florida
// Sparse Matrix Collection format the paper's graphs come in).
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return mmio.ReadMatrixMarket(r) }

// WriteMatrixMarket writes g in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return mmio.WriteMatrixMarket(w, g) }

// ReadEdgeList loads whitespace-separated "u v" pairs (0-based).
func ReadEdgeList(r io.Reader) (*Graph, error) { return mmio.ReadEdgeList(r) }

// WriteEdgeList writes g as "u v" lines.
func WriteEdgeList(w io.Writer, g *Graph) error { return mmio.WriteEdgeList(w, g) }

// ReadBinary loads the compact binary CSR format.
func ReadBinary(r io.Reader) (*Graph, error) { return mmio.ReadBinary(r) }

// WriteBinary writes the compact binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error { return mmio.WriteBinary(w, g) }
