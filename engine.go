package optibfs

import (
	"context"
	"fmt"

	"optibfs/internal/beamer"
	"optibfs/internal/core"
)

// Engine is a reusable BFS handle bound to one graph and algorithm.
// Where BFS allocates and zeroes per-run state (distance/parent/claim
// arrays, worker queues, counters) on every call, an Engine allocates
// it once and invalidates the visited set between runs with an O(1)
// epoch bump, so repeated Run calls on a warm engine allocate nothing.
// Multi-source workloads — Graph500-style averaging, diameter sweeps,
// betweenness sampling — should build one Engine per (graph, algorithm)
// and reuse it.
//
// Sharing contract: the Graph is read-only and may be shared by any
// number of engines and goroutines, but each Engine is single-caller —
// at most one Run in flight per engine. The returned Result aliases the
// engine's pooled arrays and is valid only until the engine's next run;
// callers that need a run's output beyond that must copy it.
//
// The paper's algorithms (and DirectionOptimizing) run on true pooled
// engines; the Baseline1/Baseline2 comparison runtimes have no engine
// layer, so an Engine over them transparently falls back to one-shot
// dispatch per Run (correct, just not amortized). Options.Shards > 1
// routes the paper's algorithms onto the sharded owner-compute backend
// (per-shard pooled engines with cross-shard frontier exchange); the
// default is the single-engine path.
type Engine struct {
	g      *Graph
	algo   Algorithm
	opt    Options
	ce     core.Backend
	be     *beamer.Engine
	closed bool
}

// NewEngine builds a reusable engine running algo on g. A nil opt is
// treated as the zero Options.
func NewEngine(g *Graph, algo Algorithm, opt *Options) (*Engine, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	e := &Engine{g: g, algo: algo, opt: o}
	switch algo {
	case Serial, BFSC, BFSCL, BFSDL, BFSW, BFSWL, BFSWS, BFSWSL, BFSEL:
		ce, err := core.NewBackend(g, core.Algorithm(algo), o)
		if err != nil {
			return nil, err
		}
		e.ce = ce
	case DirectionOptimizing:
		be, err := beamer.NewEngine(g, beamer.Options{Options: o})
		if err != nil {
			return nil, err
		}
		e.be = be
	case Baseline1, Baseline2QueueCAS, Baseline2Read, Baseline2LocalQueue,
		Baseline2LocalQueueBitmap, Baseline2Hybrid:
		if g == nil {
			return nil, fmt.Errorf("optibfs: nil graph")
		}
	default:
		return nil, fmt.Errorf("optibfs: unknown algorithm %q", algo)
	}
	return e, nil
}

// Run executes one search from src on the engine's pooled state. The
// Result is valid only until the engine's next run.
func (e *Engine) Run(src int32) (*Result, error) {
	return e.RunContext(context.Background(), src)
}

// RunContext is Run with cancellation, checked at every level boundary
// (the baseline fallbacks, as with BFSContext, only check ctx before
// starting).
func (e *Engine) RunContext(ctx context.Context, src int32) (*Result, error) {
	if e.closed {
		return nil, fmt.Errorf("optibfs: engine is closed")
	}
	switch {
	case e.ce != nil:
		return e.ce.RunContext(ctx, src)
	case e.be != nil:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return e.be.Run(src)
	default:
		return BFSContext(ctx, e.g, src, e.algo, &e.opt)
	}
}

// RunGoal executes one goal-directed search from src: the run stops at
// the level barrier that settles goal (target committed or depth bound
// reached), and the partial Result is exact for every closed level —
// distances at or below Result.Levels are final, deeper vertices are
// Unreached, Result.Truncated reports whether the goal fired. Goal
// checks happen only at level barriers, so the hot traversal path is
// identical to Run's. Supported by the paper's algorithms (the engine
// family); the baseline fallbacks have no goal machinery and refuse.
func (e *Engine) RunGoal(ctx context.Context, src int32, goal Goal) (*Result, error) {
	if e.closed {
		return nil, fmt.Errorf("optibfs: engine is closed")
	}
	if e.ce == nil {
		return nil, fmt.Errorf("optibfs: %s does not support goal-directed termination", e.algo)
	}
	return e.ce.RunGoal(ctx, src, goal)
}

// RunMany runs one search per source, invoking visit (if non-nil)
// after each. The Result passed to visit aliases pooled state and is
// only valid for the duration of that call; visit returning a non-nil
// error stops the batch. This is the amortized path for Graph500-style
// multi-source measurement: across the batch only the first run pays
// allocation.
func (e *Engine) RunMany(sources []int32, visit func(i int, res *Result) error) error {
	for i, src := range sources {
		res, err := e.Run(src)
		if err != nil {
			return err
		}
		if visit != nil {
			if err := visit(i, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reseed re-derives the engine's RNG streams (victim and pool
// selection) from seed, exactly as a fresh engine with Options.Seed =
// seed would, without allocating.
func (e *Engine) Reseed(seed uint64) {
	e.opt.Seed = seed
	if e.ce != nil {
		e.ce.Reseed(seed)
	}
}

// Algorithm returns the engine's algorithm.
func (e *Engine) Algorithm() Algorithm { return e.algo }

// Graph returns the engine's bound graph.
func (e *Engine) Graph() *Graph { return e.g }

// Close releases the engine's resources (its persistent workers, when
// Options.PersistentWorkers is set). Close is idempotent; a closed
// engine's Run returns an error.
func (e *Engine) Close() {
	e.closed = true
	if e.ce != nil {
		e.ce.Close()
	}
}
