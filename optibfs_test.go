package optibfs

import (
	"bytes"
	"testing"
)

func TestBFSAllPublicAlgorithms(t *testing.T) {
	g, err := NewRMAT(1024, 8192, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := SerialBFS(g, 0)
	for _, algo := range Algorithms {
		res, err := BFS(g, 0, algo, &Options{Workers: 4, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("%s: dist[%d]=%d want %d", algo, v, res.Dist[v], want[v])
			}
		}
		if err := Validate(g, 0, res.Dist); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestBFSNilOptions(t *testing.T) {
	g, err := NewRandom(100, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, BFSWSL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached < 1 {
		t.Fatalf("reached %d", res.Reached)
	}
}

func TestBFSUnknownAlgorithm(t *testing.T) {
	g, _ := NewGrid(3, 3)
	if _, err := BFS(g, 0, Algorithm("made-up"), nil); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestLockfreeClassification(t *testing.T) {
	for _, a := range []Algorithm{BFSCL, BFSDL, BFSWL, BFSWSL} {
		if !a.Lockfree() {
			t.Fatalf("%s not classified lockfree", a)
		}
	}
	for _, a := range []Algorithm{Serial, BFSC, BFSW, BFSWS, Baseline1, Baseline2QueueCAS} {
		if a.Lockfree() {
			t.Fatalf("%s misclassified lockfree", a)
		}
	}
}

func TestPublicConstructors(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*Graph, error)
	}{
		{"rmat", func() (*Graph, error) { return NewRMAT(256, 1024, 1) }},
		{"powerlaw", func() (*Graph, error) { return NewPowerLaw(256, 1024, 2.2, 1) }},
		{"layered", func() (*Graph, error) { return NewLayered(256, 1024, 8, 1) }},
		{"random", func() (*Graph, error) { return NewRandom(256, 1024, 1) }},
		{"grid", func() (*Graph, error) { return NewGrid(16, 16) }},
	}
	for _, tc := range cases {
		g, err := tc.mk()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if g.NumVertices() != 256 {
			t.Fatalf("%s: n=%d", tc.name, g.NumVertices())
		}
	}
}

func TestFromEdgesAndUndirected(t *testing.T) {
	g, err := FromEdges(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	u, err := FromEdgesUndirected(3, []Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumEdges() != 2 {
		t.Fatalf("undirected m=%d", u.NumEdges())
	}
	dist := SerialBFS(u, 1)
	if dist[0] != 1 {
		t.Fatalf("reverse edge missing: %v", dist)
	}
}

func TestPublicIORoundTrips(t *testing.T) {
	g, err := NewPowerLaw(200, 1200, 2.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	var mm, el, bin bytes.Buffer
	if err := WriteMatrixMarket(&mm, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	for name, load := range map[string]func() (*Graph, error){
		"mtx": func() (*Graph, error) { return ReadMatrixMarket(&mm) },
		"bin": func() (*Graph, error) { return ReadBinary(&bin) },
	} {
		g2, err := load()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: shape changed", name)
		}
	}
	g3, err := ReadEdgeList(&el)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Fatalf("edge list lost edges")
	}
}

func TestResultCountersExposed(t *testing.T) {
	g, err := NewPowerLaw(2048, 16384, 2.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(g, 0, BFSWSL, &Options{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var c Counters = res.Counters
	if c.EdgesScanned == 0 {
		t.Fatal("counters not populated")
	}
	if c.AtomicRMW != 0 {
		t.Fatalf("paper algorithm reported %d atomic RMW", c.AtomicRMW)
	}
	resB, err := BFS(g, 0, Baseline2LocalQueueBitmap, &Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Counters.AtomicRMW == 0 {
		t.Fatal("baseline2 reported no atomic RMW")
	}
}
