module optibfs

go 1.22
