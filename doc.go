// Package optibfs is a from-scratch Go implementation of the parallel
// BFS algorithms of Tithi, Matani, Menghani & Chowdhury, "Avoiding
// Locks and Atomic Instructions in Shared-Memory Parallel BFS Using
// Optimistic Parallelization" (IEEE IPDPSW 2013), together with the two
// systems the paper compares against: Leiserson & Schardl's bag-based
// PBFS (SPAA 2010) and Hong et al.'s multicore BFS (PACT 2011).
//
// The headline idea: level-synchronous BFS tolerates duplicate
// exploration, so the dynamic load balancer — centralized queue
// dispatch or randomized work stealing over plain array queues — can
// update its shared indices with ordinary loads and stores. Races make
// indices move backwards or segments overlap; the algorithms detect
// the resulting invalid segments with cheap sanity checks, suppress
// most duplicates by zeroing queue slots as they are read, and never
// need a lock or an atomic read-modify-write instruction.
//
// # Quick start
//
//	g, err := optibfs.NewRMAT(1<<20, 1<<24, 42)   // or FromEdges, ReadMatrixMarket, ...
//	res, err := optibfs.BFS(g, 0, optibfs.BFSWSL, &optibfs.Options{})
//	fmt.Println(res.Levels, res.Reached)
//
// Eight algorithms from the paper (Table II) are exposed — Serial,
// BFSC, BFSCL, BFSDL, BFSW, BFSWL, BFSWS, BFSWSL — plus Baseline1 (the
// pennant/bag PBFS) and the Baseline2 variants (queue/read/bitmap BFS
// built on atomic RMW). Every parallel result carries per-worker
// instrumentation counters (steal taxonomy, lock usage, atomic RMW
// count, duplicate work) so the paper's Table VI style analyses can be
// rebuilt from any run.
package optibfs
