#!/usr/bin/env bash
# Benchmark smoke for CI: run the steady-state engine benchmarks for a
# few short iterations with -benchmem and fail if the warm Engine.Run
# path allocates more than a small constant per op. A warm engine is
# designed to allocate nothing; the gate averages over 3 iterations and
# leaves headroom because racy duplicate counts vary run to run, so
# pooled-queue high-water marks settle stochastically and a sample can
# still land on a late growth event.
#
# Usage: scripts/benchsmoke.sh [output-file]
#   MAX_ALLOCS  gate on allocs/op for BenchmarkEngineSteadyState (default 8)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench-smoke.txt}"
max_allocs="${MAX_ALLOCS:-8}"

go test -run '^$' -bench 'BenchmarkEngineSteadyState|BenchmarkEngineRunMany' \
  -benchtime 3x -benchmem . | tee "$out"

fail=0
found=0
while read -r name allocs; do
  found=$((found + 1))
  if [ "$allocs" -gt "$max_allocs" ]; then
    echo "FAIL: $name allocates $allocs allocs/op (max $max_allocs)" >&2
    fail=1
  else
    echo "ok: $name $allocs allocs/op (max $max_allocs)"
  fi
done < <(awk '/^BenchmarkEngineSteadyState/ {
  for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $1, $(i-1)
}' "$out")

if [ "$found" -lt 4 ]; then
  echo "FAIL: expected >=4 steady-state benchmark results, found $found" >&2
  fail=1
fi
exit "$fail"
