#!/usr/bin/env bash
# Benchmark smoke for CI: run the steady-state engine benchmarks and the
# drain-locality benchmarks for a few short iterations with -benchmem and
# fail if the warm Engine.Run path allocates.
#
# BenchmarkEngineSteadyState gets a small headroom (MAX_ALLOCS): racy
# duplicate counts vary run to run, so pooled-queue high-water marks
# settle stochastically and a sample can still land on a late growth
# event. BenchmarkDrainLocality is gated at 0 allocs/op by default
# (MAX_ALLOCS_DRAIN): it warms each engine for 8 full sweeps before the
# timed region, so batched publication + prefetched drains must run
# allocation-free at every block size.
#
# BenchmarkShardedSteadyState (warm sharded backends, shards 1/2/4)
# gets the same stochastic headroom as the engine benchmark
# (MAX_ALLOCS_SHARDED): the cross-shard exchange queues and remote
# blocks are pooled, but their high-water capacities settle over the
# first few runs just like the in-queues do.
#
# BenchmarkHybridSteadyState (warm direction-optimizing engines) is
# gated at 0 allocs/op by default (MAX_ALLOCS_HYBRID): the bitmaps,
# transpose, and compaction targets are all engine-pooled, and the
# bottom-up kernel writes race-free into preallocated state, so the
# hybrid warm path has no stochastic growth source at all.
#
# BenchmarkGoalSteadyState (warm goal-directed runs) is gated in two
# halves: the depth-bounded rows at 0 allocs/op by default
# (MAX_ALLOCS_GOAL) — the goal predicate runs at level barriers on
# pooled state and adds no growth source of its own — while the s-t
# rows get the engine-style stochastic headroom (MAX_ALLOCS_GOAL_ST):
# they sweep almost the whole graph, so racy duplicate counts can still
# land on a late queue high-water growth event exactly as in
# BenchmarkEngineSteadyState.
#
# Usage: scripts/benchsmoke.sh [output-file]
#   MAX_ALLOCS          gate for BenchmarkEngineSteadyState (default 8)
#   MAX_ALLOCS_DRAIN    gate for BenchmarkDrainLocality (default 0)
#   MAX_ALLOCS_SHARDED  gate for BenchmarkShardedSteadyState (default 8)
#   MAX_ALLOCS_HYBRID   gate for BenchmarkHybridSteadyState (default 0)
#   MAX_ALLOCS_GOAL     gate for BenchmarkGoalSteadyState depth rows (default 0)
#   MAX_ALLOCS_GOAL_ST  gate for BenchmarkGoalSteadyState s-t rows (default 8)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench-smoke.txt}"
max_allocs="${MAX_ALLOCS:-8}"
max_allocs_drain="${MAX_ALLOCS_DRAIN:-0}"
max_allocs_sharded="${MAX_ALLOCS_SHARDED:-8}"
max_allocs_hybrid="${MAX_ALLOCS_HYBRID:-0}"
max_allocs_goal="${MAX_ALLOCS_GOAL:-0}"
max_allocs_goal_st="${MAX_ALLOCS_GOAL_ST:-8}"

go test -run '^$' -bench 'BenchmarkEngineSteadyState|BenchmarkEngineRunMany|BenchmarkDrainLocality|BenchmarkShardedSteadyState|BenchmarkHybridSteadyState|BenchmarkGoalSteadyState' \
  -benchtime 3x -benchmem . | tee "$out"

fail=0

# gate <prefix-regex> <max> <min-results>
gate() {
  local prefix="$1" max="$2" min="$3" found=0
  while read -r name allocs; do
    found=$((found + 1))
    if [ "$allocs" -gt "$max" ]; then
      echo "FAIL: $name allocates $allocs allocs/op (max $max)" >&2
      fail=1
    else
      echo "ok: $name $allocs allocs/op (max $max)"
    fi
  done < <(awk -v pre="$prefix" '$1 ~ pre {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $1, $(i-1)
  }' "$out")
  if [ "$found" -lt "$min" ]; then
    echo "FAIL: expected >=$min results for $prefix, found $found" >&2
    fail=1
  fi
}

gate '^BenchmarkEngineSteadyState' "$max_allocs" 4
gate '^BenchmarkDrainLocality' "$max_allocs_drain" 6
gate '^BenchmarkShardedSteadyState' "$max_allocs_sharded" 6
gate '^BenchmarkHybridSteadyState' "$max_allocs_hybrid" 2
gate '^BenchmarkGoalSteadyState/.*depth' "$max_allocs_goal" 2
gate '^BenchmarkGoalSteadyState/.*/st' "$max_allocs_goal_st" 2

exit "$fail"
