#!/usr/bin/env bash
# Profile-guided optimization pipeline: capture a CPU profile from the
# steady-state engine benchmark (the hot drain/publish loops dominate
# it), install it as default.pgo so `go build` picks it up
# automatically, and compare PGO-off vs PGO-on benchmark runs.
#
# Usage: scripts/pgo.sh [outdir]
#   BENCH      profile+compare benchmark regex
#              (default 'BenchmarkEngineSteadyState|BenchmarkDrainLocality')
#   BENCHTIME  per-benchmark time for the comparison runs (default 5x)
#   PROFTIME   per-benchmark time for the profiling run (default 10x)
#
# Writes into outdir (default pgo-out/):
#   cpu.pprof        raw profile from the profiling run
#   bench-nopgo.txt  comparison run built with -pgo=off
#   bench-pgo.txt    comparison run built with the captured profile
# and installs the profile as ./default.pgo (git-ignored; CI uploads it
# with the comparison as the bench-compare artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-pgo-out}"
bench="${BENCH:-BenchmarkEngineSteadyState|BenchmarkDrainLocality}"
benchtime="${BENCHTIME:-5x}"
proftime="${PROFTIME:-10x}"
mkdir -p "$outdir"

echo "== profiling run ($proftime) =="
go test -run '^$' -bench "$bench" -benchtime "$proftime" \
  -cpuprofile "$outdir/cpu.pprof" .

echo "== baseline (-pgo=off, $benchtime) =="
go test -run '^$' -bench "$bench" -benchtime "$benchtime" \
  -pgo=off . | tee "$outdir/bench-nopgo.txt"

echo "== PGO build ($benchtime) =="
cp "$outdir/cpu.pprof" default.pgo
go test -run '^$' -bench "$bench" -benchtime "$benchtime" \
  -pgo default.pgo . | tee "$outdir/bench-pgo.txt"

echo "== summary =="
paste <(grep '^Benchmark' "$outdir/bench-nopgo.txt" | awk '{print $1, $3}') \
      <(grep '^Benchmark' "$outdir/bench-pgo.txt" | awk '{print $3}') |
  awk '{printf "%-55s nopgo=%10s ns/op  pgo=%10s ns/op\n", $1, $2, $3}'
echo "profile installed as default.pgo; artifacts in $outdir/"
