#!/bin/sh
# Regenerates every artifact this repository records:
#   - test_output.txt   : the full test suite log
#   - bench_output.txt  : the full benchmark sweep (one family per
#                         paper table/figure, plus ablations)
#   - results_all.txt   : the paper's Tables III-VI and Figures 2-3
#                         as text tables (modeled times; see EXPERIMENTS.md)
#
# Tunables: SCALE (graph size divisor, default 64; 1 = the paper's full
# sizes), SOURCES (sources averaged per cell), BENCHTIME.
set -eu
cd "$(dirname "$0")/.."

SCALE="${SCALE:-64}"
SOURCES="${SOURCES:-6}"
BENCHTIME="${BENCHTIME:-20x}"

echo "== build & vet =="
go build ./...
go vet ./...

echo "== tests -> test_output.txt =="
go test -count=1 ./... 2>&1 | tee test_output.txt

echo "== benches -> bench_output.txt (benchtime ${BENCHTIME}) =="
go test -bench=. -benchmem -benchtime "${BENCHTIME}" ./... 2>&1 | tee bench_output.txt

echo "== experiments -> results_all.txt (scale 1/${SCALE}, ${SOURCES} sources) =="
go run ./cmd/bfsbench -exp all -scale "${SCALE}" -sources "${SOURCES}" 2>&1 | tee results_all.txt

echo "done."
