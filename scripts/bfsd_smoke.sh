#!/usr/bin/env bash
# bfsd_smoke.sh — end-to-end smoke of the hardened serving daemon:
# start bfsd, load a small RMAT graph over the API, run a
# self-validating query, check the serving counters on /metrics, swap
# in an mmap-loaded v2 file via /load?path= and query it, then SIGTERM
# the daemon and require a clean (exit 0) graceful drain.
#
# Usage: scripts/bfsd_smoke.sh [port]
set -euo pipefail

PORT="${1:-9481}"
BASE="http://127.0.0.1:${PORT}"

go build -o bfsd ./cmd/bfsd
go build -o graphgen ./cmd/graphgen

./bfsd -addr "127.0.0.1:${PORT}" -drain-timeout 10s &
BFSD_PID=$!
trap 'kill -9 "$BFSD_PID" 2>/dev/null || true' EXIT

# Wait for liveness.
for i in $(seq 1 50); do
  curl -fsS "${BASE}/healthz" -o /dev/null 2>/dev/null && break
  sleep 0.2
done
curl -fsS "${BASE}/healthz" >/dev/null

# Before a load the daemon is alive but not ready.
READY_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "${BASE}/readyz")
[ "$READY_STATUS" = "503" ] || { echo "readyz before load: $READY_STATUS, want 503"; exit 1; }

# Load a small RMAT graph.
curl -fsS -X POST "${BASE}/load?gen=rmat&n=4096&m=32768&seed=1" -o load.json
grep -q '"vertices":4096' load.json || { echo "bad /load response:"; cat load.json; exit 1; }
curl -fsS "${BASE}/readyz" >/dev/null

# Self-validating query: the daemon checks distances against the
# serial oracle and the parents against the BFS-tree rules.
curl -fsS "${BASE}/query?src=0&dst=1&validate=1" -o query.json
grep -q '"valid":true' query.json || { echo "query did not validate:"; cat query.json; exit 1; }
grep -q '"outcome":"ok"' query.json || { echo "query outcome not ok:"; cat query.json; exit 1; }

# Serving counters are on /metrics.
curl -fsS "${BASE}/metrics" -o metrics.txt
grep -q '^optibfs_serve_requests_total{outcome="ok"} 1$' metrics.txt || {
  echo "serve counters missing from /metrics:"; grep optibfs_serve metrics.txt || true; exit 1; }

# Goal-directed and analysis queries: an s-t search with path
# reconstruction, a depth-bounded k-hop sweep (must come back
# truncated), components, and eccentricity. The validate=1 legs
# self-check server-side against the serial oracle's closed levels.
curl -fsS "${BASE}/query?src=0&dst=100&path=1&validate=1" -o st.json
grep -q '"valid":true' st.json || { echo "s-t query did not validate:"; cat st.json; exit 1; }
grep -q '"dst":100' st.json || { echo "s-t response missing dst:"; cat st.json; exit 1; }
curl -fsS "${BASE}/query?src=0&k=2&validate=1" -o khop.json
grep -q '"valid":true' khop.json || { echo "k-hop query did not validate:"; cat khop.json; exit 1; }
grep -q '"truncated":true' khop.json || { echo "k-hop answer not truncated:"; cat khop.json; exit 1; }
curl -fsS "${BASE}/query?kind=components" -o comp.json
grep -q '"components":' comp.json || { echo "bad components response:"; cat comp.json; exit 1; }
curl -fsS "${BASE}/query?kind=ecc&src=0" -o ecc.json
grep -q '"ecc":' ecc.json || { echo "bad ecc response:"; cat ecc.json; exit 1; }
# dst and full=1 are contractually exclusive — a 400, not a 500.
FULL_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "${BASE}/query?src=0&dst=5&full=1")
[ "$FULL_STATUS" = "400" ] || { echo "dst+full=1: $FULL_STATUS, want 400"; exit 1; }
rm -f st.json khop.json comp.json ecc.json

# Fire 64 concurrent self-validating queries through the fused
# batcher (batching is the daemon default). Every one must come back
# valid; the burst must light up the batch-occupancy metrics.
BURST_PIDS=()
for i in $(seq 0 63); do
  curl -fsS "${BASE}/query?src=$(( (i * 17) % 4096 ))&validate=1" -o "burst_${i}.json" &
  BURST_PIDS+=("$!")
done
# Wait only on the curls — a bare `wait` would also wait on the
# long-running daemon job and hang forever.
wait "${BURST_PIDS[@]}"
for i in $(seq 0 63); do
  grep -q '"valid":true' "burst_${i}.json" || {
    echo "burst query $i did not validate:"; cat "burst_${i}.json"; exit 1; }
done
FUSED=$(grep -l '"fused":true' burst_*.json | wc -l)
[ "$FUSED" -ge 1 ] || { echo "no burst query was fused"; exit 1; }
rm -f burst_*.json

curl -fsS "${BASE}/metrics" -o metrics.txt
grep -q '^optibfs_serve_batch_lanes_count [1-9]' metrics.txt || {
  echo "batch occupancy histogram missing from /metrics:"
  grep optibfs_serve_batch metrics.txt || true; exit 1; }
grep -q '^optibfs_serve_fused_lanes_total [1-9]' metrics.txt || {
  echo "fused lane counter missing from /metrics:"
  grep optibfs_serve_fused metrics.txt || true; exit 1; }

# mmap path load: write a v2 file, swap it in with /load?path=, and
# run a self-validating query against the mapped graph. The response
# must report "mapped":true — the zero-copy path, not the heap
# fallback.
./graphgen -kind rmat -n 2048 -m 16384 -seed 7 -format bin2 -o smoke.bin2
curl -fsS -X POST "${BASE}/load?path=$(pwd)/smoke.bin2" -o load2.json
grep -q '"vertices":2048' load2.json || { echo "bad /load?path response:"; cat load2.json; exit 1; }
grep -q '"mapped":true' load2.json || { echo "path load not mmapped:"; cat load2.json; exit 1; }
curl -fsS "${BASE}/query?src=0&validate=1" -o query2.json
grep -q '"valid":true' query2.json || { echo "mapped query did not validate:"; cat query2.json; exit 1; }
rm -f smoke.bin2 load2.json query2.json

# Multi-graph registry: load three named graphs, list them, query each
# by name, then evict one and require 404s on all its routes while the
# survivors keep answering.
for name in alpha beta gamma; do
  curl -fsS -X POST "${BASE}/graphs/${name}?gen=er&n=1024&m=8192&seed=3" -o "g_${name}.json"
  grep -q "\"graph\":\"${name}\"" "g_${name}.json" || {
    echo "bad /graphs/${name} load response:"; cat "g_${name}.json"; exit 1; }
done
curl -fsS "${BASE}/graphs" -o graphs.json
for name in alpha beta gamma; do
  grep -q "\"graph\":\"${name}\"" graphs.json || {
    echo "graph ${name} missing from /graphs:"; cat graphs.json; exit 1; }
  curl -fsS "${BASE}/query?src=0&graph=${name}&validate=1" -o "q_${name}.json"
  grep -q '"valid":true' "q_${name}.json" || {
    echo "named query on ${name} did not validate:"; cat "q_${name}.json"; exit 1; }
  curl -fsS "${BASE}/readyz?graph=${name}" >/dev/null
done
curl -fsS -X DELETE "${BASE}/graphs/beta" -o evict.json
grep -q '"evicted":"beta"' evict.json || { echo "bad evict response:"; cat evict.json; exit 1; }
for probe in "graphs/beta" "query?src=0&graph=beta" "readyz?graph=beta"; do
  STATUS=$(curl -s -o /dev/null -w '%{http_code}' "${BASE}/${probe}")
  [ "$STATUS" = "404" ] || { echo "${probe} after evict: $STATUS, want 404"; exit 1; }
done
curl -fsS "${BASE}/query?src=0&graph=alpha&validate=1" -o q_alpha2.json
grep -q '"valid":true' q_alpha2.json || {
  echo "survivor query after evict did not validate:"; cat q_alpha2.json; exit 1; }
rm -f g_*.json q_*.json graphs.json evict.json

# Overload: a daemon pinned to one global admission slot and no queue
# must shed a concurrent burst with 429s carrying a derived Retry-After
# (integer seconds), never the old hardcoded 503.
OPORT=$((PORT + 1))
OBASE="http://127.0.0.1:${OPORT}"
./bfsd -addr "127.0.0.1:${OPORT}" -admit-inflight 1 -admit-queue -1 -workers 1 &
OBFSD_PID=$!
trap 'kill -9 "$BFSD_PID" "$OBFSD_PID" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
  curl -fsS "${OBASE}/healthz" -o /dev/null 2>/dev/null && break
  sleep 0.2
done
curl -fsS -X POST "${OBASE}/load?gen=er&n=100000&m=800000&seed=5" -o /dev/null
OVER_PIDS=()
for i in $(seq 0 23); do
  curl -s -D "over_h_${i}.txt" -o /dev/null \
    -w '%{http_code}' "${OBASE}/query?src=$(( i * 97 ))&full=1" > "over_s_${i}.txt" &
  OVER_PIDS+=("$!")
done
wait "${OVER_PIDS[@]}"
SHED=0
for i in $(seq 0 23); do
  STATUS=$(cat "over_s_${i}.txt")
  case "$STATUS" in
    200) ;;
    429)
      SHED=$((SHED + 1))
      RA=$(tr -d '\r' < "over_h_${i}.txt" | awk 'tolower($1) == "retry-after:" {print $2}')
      case "$RA" in
        ''|*[!0-9]*) echo "429 without integer Retry-After (got '$RA'):"; cat "over_h_${i}.txt"; exit 1 ;;
      esac
      [ "$RA" -ge 1 ] && [ "$RA" -le 30 ] || { echo "Retry-After $RA out of [1,30]"; exit 1; }
      ;;
    *) echo "burst query $i: status $STATUS, want 200 or 429"; exit 1 ;;
  esac
done
[ "$SHED" -ge 1 ] || { echo "no burst query was shed with 429"; exit 1; }
rm -f over_h_*.txt over_s_*.txt
kill -TERM "$OBFSD_PID"
wait "$OBFSD_PID" || { echo "overload daemon did not drain cleanly"; exit 1; }
trap 'kill -9 "$BFSD_PID" 2>/dev/null || true' EXIT

# Graceful drain: SIGTERM must exit 0.
kill -TERM "$BFSD_PID"
WAIT_CODE=0
wait "$BFSD_PID" || WAIT_CODE=$?
trap - EXIT
[ "$WAIT_CODE" = "0" ] || { echo "bfsd exited $WAIT_CODE on SIGTERM, want 0"; exit 1; }

echo "bfsd smoke OK"
