// Quickstart: generate a Graph500-style RMAT graph, run the paper's
// flagship lockfree work-stealing BFS (BFS_WSL), and verify the result.
package main

import (
	"fmt"
	"log"
	"time"

	"optibfs"
)

func main() {
	// A scale-free RMAT graph: 2^16 vertices, 2^20 edges.
	g, err := optibfs.NewRMAT(1<<16, 1<<20, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	start := time.Now()
	res, err := optibfs.BFS(g, 0, optibfs.BFSWSL, &optibfs.Options{Workers: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("BFS_WSL: reached %d vertices in %d levels (%.2f ms)\n",
		res.Reached, res.Levels, elapsed.Seconds()*1e3)
	fmt.Printf("work: %d pops (%d duplicate explorations), %d edges scanned\n",
		res.Pops, res.Duplicates(), res.Counters.EdgesScanned)
	fmt.Printf("lock-freedom: %d locks, %d atomic RMW (both always 0 for BFS_WSL)\n",
		res.Counters.LockAcquisitions, res.Counters.AtomicRMW)

	// Verify against the graph structure (Graph500-style check).
	if err := optibfs.Validate(g, 0, res.Dist); err != nil {
		log.Fatal("validation failed: ", err)
	}
	fmt.Println("validation: OK")
}
