// Steal profile: rebuilds the paper's Table VI analysis on a generated
// scale-free graph — the success/failure taxonomy of work-stealing
// attempts under the locked (BFS_WS) and lockfree (BFS_WSL) schedulers.
//
// The lockfree variant has no "victim locked" failures (there are no
// locks) but gains "stale" and "invalid" segment rejections — the
// price of optimistic index updates — while typically converting a
// larger share of attempts into successful steals.
package main

import (
	"fmt"
	"log"

	"optibfs"
)

func main() {
	g, err := optibfs.NewPowerLaw(200_000, 2_400_000, 2.2, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wikipedia-like graph: n=%d m=%d\n\n", g.NumVertices(), g.NumEdges())

	const sources = 20
	for _, algo := range []optibfs.Algorithm{optibfs.BFSWS, optibfs.BFSWSL} {
		var agg optibfs.Counters
		for s := 0; s < sources; s++ {
			src := int32(s * 9973 % int(g.NumVertices()))
			res, err := optibfs.BFS(g, src, algo, &optibfs.Options{Workers: 8, Seed: uint64(s)})
			if err != nil {
				log.Fatal(err)
			}
			agg.Add(&res.Counters)
		}
		pct := func(v int64) string {
			if agg.StealAttempts == 0 {
				return "0.00%"
			}
			return fmt.Sprintf("%6.2f%%", 100*float64(v)/float64(agg.StealAttempts))
		}
		fmt.Printf("%s over %d sources:\n", algo, sources)
		fmt.Printf("  total steal attempts: %d\n", agg.StealAttempts)
		fmt.Printf("  successful:           %9d (%s)\n", agg.StealSuccess, pct(agg.StealSuccess))
		if algo == optibfs.BFSWS {
			fmt.Printf("  failed, victim locked:%9d (%s)\n", agg.StealVictimLocked, pct(agg.StealVictimLocked))
		} else {
			fmt.Printf("  failed, victim locked:      N/A (no locks)\n")
		}
		fmt.Printf("  failed, victim idle:  %9d (%s)\n", agg.StealVictimIdle, pct(agg.StealVictimIdle))
		fmt.Printf("  failed, too small:    %9d (%s)\n", agg.StealTooSmall, pct(agg.StealTooSmall))
		if algo == optibfs.BFSWSL {
			fmt.Printf("  failed, stale seg:    %9d (%s)\n", agg.StealStale, pct(agg.StealStale))
			fmt.Printf("  failed, invalid seg:  %9d (%s)\n", agg.StealInvalid, pct(agg.StealInvalid))
		}
		fmt.Printf("  locks taken: %d, atomic RMW: %d\n\n", agg.LockAcquisitions, agg.AtomicRMW)
	}

	// Event trace: replay one instrumented run and show how steal
	// activity concentrates at each level's end (the paper's
	// explanation for its large failed-attempt counts).
	res, err := optibfs.BFS(g, 0, optibfs.BFSWSL, &optibfs.Options{
		Workers: 8, Seed: 1, TraceCapacity: 1 << 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	perLevel := map[int32][2]int{} // level -> [attempts, successes]
	for _, events := range res.Events {
		for _, e := range events {
			v := perLevel[e.Level]
			switch e.Kind {
			case optibfs.EventStealOK:
				v[0]++
				v[1]++
			case optibfs.EventFetch:
				// not a steal
			default:
				v[0]++
			}
			perLevel[e.Level] = v
		}
	}
	fmt.Println("steal activity by BFS level (one traced BFS_WSL run):")
	for lvl := int32(0); lvl < res.Levels; lvl++ {
		v := perLevel[lvl]
		fmt.Printf("  level %2d: frontier %7d, steal attempts %6d (%d successful)\n",
			lvl, res.LevelSizes[lvl], v[0], v[1])
	}
}
