// Centrality: who holds a network together? Computes sampled
// betweenness centrality (Brandes over BFS) on a scale-free network
// and contrasts it with raw degree — the classic finding that the
// best-connected broker is not always the highest-degree hub.
// Betweenness centrality is one of the BFS-driven problems the paper's
// introduction motivates its high-performance BFS with.
package main

import (
	"fmt"
	"log"
	"sort"

	"optibfs"
)

func main() {
	// A collaboration-style network: preferential attachment, so a few
	// well-connected brokers emerge organically.
	const n = 20_000
	g, err := optibfs.NewBarabasiAlbert(n, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaboration network: %d people, %d ties\n", g.NumVertices(), g.NumEdges()/2)

	comps, sizes, err := optibfs.ConnectedComponents(g, &optibfs.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	_ = comps
	fmt.Printf("components: %d (largest %d)\n", len(sizes), sizes[0])

	diam, err := optibfs.EstimateDiameter(g, 0, &optibfs.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diameter (double-sweep bound): %d\n\n", diam)

	// Sampled betweenness: 64 BFS sources estimate the ranking.
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i * (n / 64))
	}
	bc, err := optibfs.Betweenness(g, sources, &optibfs.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	type person struct {
		id      int32
		bc      float64
		degree  int64
		degRank int
	}
	people := make([]person, n)
	for v := int32(0); v < n; v++ {
		people[v] = person{id: v, bc: bc[v], degree: g.OutDegree(v)}
	}
	byDegree := make([]person, n)
	copy(byDegree, people)
	sort.Slice(byDegree, func(i, j int) bool { return byDegree[i].degree > byDegree[j].degree })
	rank := map[int32]int{}
	for r, p := range byDegree {
		rank[p.id] = r + 1
	}
	sort.Slice(people, func(i, j int) bool { return people[i].bc > people[j].bc })

	fmt.Println("top-10 brokers by (sampled) betweenness centrality:")
	fmt.Println("  person     betweenness      ties  degree-rank")
	for _, p := range people[:10] {
		fmt.Printf("  %-9d %12.0f  %8d  #%d\n", p.id, p.bc, p.degree, rank[p.id])
	}
	fmt.Println("\n(BFS per source:", len(sources), "searches — the workload the paper's lockfree BFS accelerates)")
}
