// Pathfinder: unweighted shortest paths with explicit routes — the
// "finding shortest paths" building-block application from the paper's
// introduction. Uses Options.TrackParents, which records one parent per
// vertex with the same arbitrary-concurrent-write trick the paper
// describes in §IV-D (no locks, no atomic RMW), then reconstructs and
// verifies actual routes.
package main

import (
	"fmt"
	"log"

	"optibfs"
)

func main() {
	// A road-network-like graph: mostly local structure with a known
	// number of "regions" (layers), undirected-style connectivity.
	const n = 150_000
	g, err := optibfs.NewLayered(n, 1_200_000, 40, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d road segments\n", g.NumVertices(), g.NumEdges())

	const src = 0
	res, err := optibfs.BFS(g, src, optibfs.BFSWL, &optibfs.Options{
		Workers:      8,
		TrackParents: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := optibfs.Validate(g, src, res.Dist); err != nil {
		log.Fatal(err)
	}
	if err := optibfs.ValidateParents(g, src, res.Dist, res.Parent); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-source shortest paths from junction %d: %d junctions reachable, max %d hops\n",
		src, res.Reached, res.Levels-1)

	// Reconstruct routes to a few destinations, near and far.
	for _, dst := range []int32{1, n / 2, n - 1} {
		path := optibfs.PathTo(res.Parent, dst)
		if path == nil {
			fmt.Printf("junction %d: unreachable\n", dst)
			continue
		}
		// Every hop must be a real edge and the length must equal the
		// BFS distance.
		if int32(len(path)-1) != res.Dist[dst] {
			log.Fatalf("route length %d != distance %d", len(path)-1, res.Dist[dst])
		}
		for i := 1; i < len(path); i++ {
			found := false
			for _, w := range g.Neighbors(path[i-1]) {
				if w == path[i] {
					found = true
					break
				}
			}
			if !found {
				log.Fatalf("route uses nonexistent road %d->%d", path[i-1], path[i])
			}
		}
		if len(path) > 8 {
			fmt.Printf("junction %-7d: %d hops, route %v ... %v\n", dst, len(path)-1, path[:4], path[len(path)-3:])
		} else {
			fmt.Printf("junction %-7d: %d hops, route %v\n", dst, len(path)-1, path)
		}
	}

	// Hop-count histogram: how far is everything?
	buckets := map[int32]int{}
	for _, d := range res.Dist {
		if d != optibfs.Unreached {
			buckets[d/5]++
		}
	}
	fmt.Println("\nreachability by distance band:")
	for b := int32(0); b*5 < res.Levels; b++ {
		fmt.Printf("  %2d-%2d hops: %6d junctions\n", b*5, b*5+4, buckets[b])
	}
	fmt.Println("all routes verified against the road network")
}
