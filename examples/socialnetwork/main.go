// Social-network analysis: the workload class the paper's scale-free
// optimization targets. Builds a power-law graph (like a follower
// network), finds its hubs, and measures how the two-phase scale-free
// BFS (BFS_WSL) deals with hot vertices compared to plain lockfree
// work stealing (BFS_WL): reach, levels, hot-vertex deferrals, and
// duplicate work from several starting users.
package main

import (
	"fmt"
	"log"
	"sort"

	"optibfs"
)

func main() {
	// A follower-style network: 100k users, ~1.6M follows, power-law
	// exponent 2.1 (heavy head — a few celebrity hubs).
	const users = 100_000
	g, err := optibfs.NewPowerLaw(users, 1_600_000, 2.1, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Who are the hubs?
	type hub struct {
		id  int32
		deg int64
	}
	hubs := make([]hub, 0, 10)
	for v := int32(0); v < g.NumVertices(); v++ {
		hubs = append(hubs, hub{v, g.OutDegree(v)})
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].deg > hubs[j].deg })
	fmt.Println("top-5 hubs (user, followees):")
	for _, h := range hubs[:5] {
		fmt.Printf("  user %-6d degree %d\n", h.id, h.deg)
	}

	// BFS from a hub and from a peripheral user: how many hops does
	// the network need to reach everyone? (The small-world question.)
	sources := []int32{hubs[0].id, hubs[len(hubs)/2].id}
	for _, src := range sources {
		for _, algo := range []optibfs.Algorithm{optibfs.BFSWL, optibfs.BFSWSL} {
			res, err := optibfs.BFS(g, src, algo, &optibfs.Options{Workers: 8, Seed: 3})
			if err != nil {
				log.Fatal(err)
			}
			if err := optibfs.Validate(g, src, res.Dist); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s from user %-6d: reach %6d users, %d hops, %5d duplicate explorations, %3d hot vertices deferred\n",
				algo, src, res.Reached, res.Levels-1, res.Duplicates(), res.Counters.HotVertices)
		}
	}

	// Distance histogram from the top hub — the "degrees of
	// separation" curve.
	res, err := optibfs.BFS(g, hubs[0].id, optibfs.BFSWSL, &optibfs.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int32]int{}
	for _, d := range res.Dist {
		if d != optibfs.Unreached {
			counts[d]++
		}
	}
	fmt.Printf("\ndegrees of separation from user %d:\n", hubs[0].id)
	for d := int32(0); d < res.Levels; d++ {
		fmt.Printf("  %d hop(s): %6d users\n", d, counts[d])
	}
}
