// Connected components via repeated BFS — one of the classic
// "BFS as a building block" applications from the paper's introduction
// (shortest paths, connected components, clustering...).
//
// Builds an undirected graph from several disconnected communities and
// labels each component by running the lockfree centralized BFS from
// every still-unlabeled vertex.
package main

import (
	"fmt"
	"log"

	"optibfs"
)

func main() {
	// Three communities of different sizes plus isolated vertices,
	// assembled as one undirected edge list.
	var edges []optibfs.Edge
	addCommunity := func(base, size int32) {
		// A ring plus chords: connected, sparse.
		for i := int32(0); i < size; i++ {
			edges = append(edges, optibfs.Edge{Src: base + i, Dst: base + (i+1)%size})
			if i%7 == 0 {
				edges = append(edges, optibfs.Edge{Src: base + i, Dst: base + (i+size/2)%size})
			}
		}
	}
	addCommunity(0, 40_000)     // big community
	addCommunity(40_000, 9_000) // medium
	addCommunity(49_000, 800)   // small
	const n = 50_000            // vertices 49_800..49_999 stay isolated
	g, err := optibfs.FromEdgesUndirected(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Label components with repeated BFS.
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	var sizes []int64
	for v := int32(0); v < n; v++ {
		if label[v] != -1 {
			continue
		}
		comp := int32(len(sizes))
		if g.OutDegree(v) == 0 {
			label[v] = comp
			sizes = append(sizes, 1)
			continue
		}
		res, err := optibfs.BFS(g, v, optibfs.BFSCL, &optibfs.Options{Workers: 4, Seed: uint64(v)})
		if err != nil {
			log.Fatal(err)
		}
		var size int64
		for u, d := range res.Dist {
			if d != optibfs.Unreached {
				label[u] = comp
				size++
			}
		}
		sizes = append(sizes, size)
	}

	big := 0
	for _, s := range sizes {
		if s > 1 {
			big++
		}
	}
	fmt.Printf("graph: %d vertices, %d undirected edges\n", g.NumVertices(), g.NumEdges()/2)
	fmt.Printf("components: %d total (%d non-trivial)\n", len(sizes), big)
	for i, s := range sizes {
		if s > 1 {
			fmt.Printf("  component %d: %d vertices\n", i, s)
		}
	}
	// Sanity: the construction has exactly 3 non-trivial components
	// and 200 singletons.
	if big != 3 || len(sizes) != 3+200 {
		log.Fatalf("unexpected component structure: %d non-trivial of %d", big, len(sizes))
	}
	fmt.Println("component structure verified")
}
