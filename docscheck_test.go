package optibfs

// Documentation discipline check: every exported top-level identifier
// in the library packages must carry a doc comment. Runs as part of
// the normal test suite so documentation debt fails CI like any other
// regression.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Library packages only: commands and examples are package
			// main (no exported API surface).
			if d.Name() == "cmd" || d.Name() == "examples" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if !dd.Name.IsExported() {
					continue
				}
				if dd.Recv != nil && !receiverExported(dd.Recv) {
					continue
				}
				if dd.Doc == nil {
					missing = append(missing, pos(fset, dd.Pos())+" func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && dd.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							missing = append(missing, pos(fset, sp.Pos())+" type "+sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && dd.Doc == nil && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, pos(fset, sp.Pos())+" value "+name.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + strconv.Itoa(position.Line)
}
